"""Command-line interface: ``python -m repro`` (installed as ``repro``).

Extract mappings from documents with a variable regex, in the paper's
mapping semantics::

    $ python -m repro '.*Seller: x{[^,\\n]*},.*' registry.csv
    {"x": "John"}
    {"x": "Mark"}

Modes:

* default — one JSON object per output mapping (absent optional fields
  are simply missing keys);
* ``--spans`` — emit ``[begin, end]`` pairs instead of contents;
* ``--check`` — print satisfiability, sequentiality and a witness
  document for the pattern, then exit (static analysis, Section 6);
* ``--explain`` — print the compilation planner's pass log (states and
  transitions before/after every pass, timings), then exit;
* ``--count`` — print only the number of mappings;
* ``--engine {compiled,seed}`` — evaluation engine; ``compiled`` (the
  default) uses :mod:`repro.engine`'s tables, pruning, and memoisation;
* ``--opt-level {0,1,2}`` — the planner pipeline behind the compiled
  engine (0 straight translation, 1 default passes, 2 adds budgeted
  determinisation);
* ``--stats`` — after the run, print the engine's kernel memo sizes and
  cache hit/miss counters to stderr.

Serving mode — ``repro serve`` starts the long-running HTTP server
(:mod:`repro.server`) instead of a one-shot extraction::

    $ repro serve --port 8080 --workers 4

See ``repro serve --help`` for the batching/backpressure flags and
``docs/server.md`` for the endpoints.

Cluster mode — ``repro coordinate`` runs the front door that shards work
across rack worker nodes, and ``repro worker --join URL`` runs one such
node (a full server that registers and heartbeats)::

    $ repro coordinate --port 8080 &
    $ repro worker --join http://127.0.0.1:8080 --workers 2 &

See ``docs/cluster.md`` for the topology and failure model.

Multi-query mode — ``repro query`` evaluates a *set* of named queries
(algebra expressions over RGX and named sub-queries) through one shared
compiled engine, so every document is scanned once for all queries::

    $ repro query -q seller='.*Seller: x{[^,]*},.*' \\
                  -q buyer='.*Buyer: y{[^,]*},.*' registry.csv

Batch mode — several files, ``--glob`` patterns, or both — compiles the
pattern once and evaluates every document through the corpus service
(:mod:`repro.service`):

* each record carries a ``"_file"`` key identifying its document;
* ``--workers N`` shards documents across ``N`` worker processes
  (output order is deterministic and identical to ``--workers 1``);
* ``--ndjson`` groups output per *document* instead of per mapping —
  one JSON object per line with ``doc``, ``mappings``, and ``error``
  keys, and unreadable or failing documents become error records
  instead of aborting the run.

Reads from stdin when no file or glob is given.  See ``docs/cli.md`` for
copy-pasteable examples.
"""

from __future__ import annotations

import argparse
import glob as globbing
import json
import sys

from repro.spanner import Spanner
from repro.util.errors import SpannerError


def _distribution_version() -> str:
    """The installed package version (falls back to the source tree's)."""
    from importlib import metadata

    try:
        return metadata.version("repro-spanners")
    except metadata.PackageNotFoundError:
        from repro import __version__

        return __version__


def _positive_int(text: str) -> int:
    """argparse type for flags that require a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type for flags that require an integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer (got {value})"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type for durations that must be strictly positive."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number of seconds (got {text})"
        )
    return value


def _nonnegative_float(text: str) -> float:
    """argparse type for durations where zero means "immediately"."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 seconds (got {text})"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Document-spanner extraction with mapping semantics "
            "(Maturana, Riveros, Vrgoč, PODS 2018)."
        ),
        epilog=(
            "examples:\n"
            "  echo 'Seller: John, ID75' | repro '.*Seller: x{[^,]*},.*'\n"
            "  repro '.*x{a+}.*' a.txt b.txt            # batch, records tagged _file\n"
            "  repro '.*x{a+}.*' --glob 'logs/*.txt' --workers 4 --ndjson\n"
            "  repro 'x{ab}c' --check                   # static analysis only\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_distribution_version()}",
    )
    parser.add_argument("pattern", help="variable regex, e.g. '.*x{a+}.*'")
    parser.add_argument(
        "files",
        nargs="*",
        metavar="file",
        help="document file(s); defaults to stdin, several run as a batch",
    )
    parser.add_argument(
        "--glob",
        action="append",
        default=[],
        metavar="PATTERN",
        help=(
            "add files matching a glob pattern (repeatable; ** recurses); "
            "matches are sorted and deduplicated against explicit files"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "evaluate a batch across N worker processes "
            "(default 1: in-process; output order is identical either way)"
        ),
    )
    parser.add_argument(
        "--ndjson",
        action="store_true",
        help=(
            "one JSON object per document (keys: doc, mappings, error) "
            "instead of one per mapping; errors never abort the batch"
        ),
    )
    parser.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline per worker task; a batch that exceeds it is retried "
            "on a fresh worker (default: $REPRO_TASK_TIMEOUT, else none; "
            "needs --workers > 1)"
        ),
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="emit [begin, end] positions instead of contents",
    )
    parser.add_argument(
        "--count",
        action="store_true",
        help="print only the number of output mappings",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="static analysis of the pattern (no document needed)",
    )
    parser.add_argument(
        "--engine",
        choices=("compiled", "seed"),
        default="compiled",
        help="evaluation engine (default: the compiled engine)",
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=1,
        help=(
            "compilation planner opt level: 0 straight translation, "
            "1 default pass pipeline, 2 adds budgeted determinisation"
        ),
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the compilation plan's pass log, then exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "after the run, print kernel memo sizes and cache hit/miss "
            "counters to stderr (compiled engine only)"
        ),
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help=(
            "load/save compiled engines as durable artifacts under DIR "
            "(defaults to $REPRO_ARTIFACT_DIR when set; see "
            "'repro cache --help' and docs/artifacts.md)"
        ),
    )
    return parser


def build_cache_parser() -> argparse.ArgumentParser:
    """The ``repro cache`` flags (durable engine-artifact maintenance)."""
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description=(
            "Inspect and maintain the durable engine-artifact cache "
            "(compiled engines serialized to disk, reloaded zero-copy by "
            "later runs, servers, and worker processes).  See "
            "docs/artifacts.md."
        ),
        epilog=(
            "examples:\n"
            "  repro cache path                 # where artifacts live\n"
            "  repro cache list                 # one line per artifact\n"
            "  repro cache stats --json         # counts and sizes\n"
            "  repro cache clear                # delete every artifact\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "action",
        choices=("path", "list", "clear", "stats"),
        help="what to do with the artifact cache",
    )
    parser.add_argument(
        "--dir",
        metavar="DIR",
        default=None,
        help=(
            "cache directory (default: $REPRO_ARTIFACT_DIR, else "
            "~/.cache/repro-spanners/artifacts)"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output (list and stats)",
    )
    return parser


def _run_cache(argv: list[str]) -> int:
    from repro.service.artifact_store import ArtifactStore

    arguments = build_cache_parser().parse_args(argv)
    store = ArtifactStore(arguments.dir)
    if arguments.action == "path":
        print(store.root)
        return 0
    if arguments.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifact(s) from {store.root}")
        return 0
    if arguments.action == "list":
        records = store.list()
        if arguments.json:
            print(json.dumps(records, sort_keys=True))
            return 0
        if not records:
            print(f"no artifacts under {store.root}")
            return 0
        for record in records:
            if "error" in record:
                print(f"{record['path']}: INVALID: {record['error']}")
                continue
            expression = record["expression"] or "<non-string source>"
            print(
                f"{record['fingerprint'][:16]}  {record['size']:>8}B  "
                f"opt={record['opt_level']}  states={record['num_states']}  "
                f"{expression}"
            )
        return 0
    stats = store.stats()
    if arguments.json:
        print(json.dumps(stats, sort_keys=True))
    else:
        print(f"root:      {stats['root']}")
        print(f"artifacts: {stats['artifacts']}")
        print(f"bytes:     {stats['bytes']}")
    return 0


def _add_serve_flags(
    parser: argparse.ArgumentParser, default_port: int = 8080
) -> None:
    """The flags shared by ``serve``, ``worker``, and ``coordinate``
    (mirrors :class:`repro.server.ServerConfig`)."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=default_port,
        help=f"bind port (0 picks a free one; default {default_port})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "evaluate batches on N worker processes; 0 (default) stays "
            "in-process on a thread pool"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=16,
        metavar="N",
        help="flush a micro-batch at N documents (default 16)",
    )
    parser.add_argument(
        "--batch-delay",
        type=_nonnegative_float,
        default=0.002,
        metavar="SECONDS",
        help=(
            "flush a micro-batch this long after its first document "
            "(default 0.002; 0 flushes immediately)"
        ),
    )
    parser.add_argument(
        "--max-pending",
        type=_positive_int,
        default=1024,
        metavar="N",
        help=(
            "shed requests (HTTP 429) past N queued + in-flight "
            "documents (default 1024)"
        ),
    )
    parser.add_argument(
        "--drain-grace",
        type=_positive_float,
        default=10.0,
        metavar="SECONDS",
        help="seconds granted to in-flight requests on SIGTERM (default 10)",
    )
    parser.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "deadline per worker task; a batch that exceeds it is retried "
            "on a fresh worker (default: $REPRO_TASK_TIMEOUT, else none)"
        ),
    )
    parser.add_argument(
        "--max-rebuilds",
        type=_nonnegative_int,
        default=5,
        metavar="N",
        help=(
            "consecutive worker-pool rebuilds tolerated before the server "
            "degrades to in-process evaluation (default 5)"
        ),
    )
    parser.add_argument(
        "--degraded-reset",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "after degrading, wait this long before trying to revive the "
            "worker pool (default 30)"
        ),
    )
    parser.add_argument(
        "--artifact-dir",
        metavar="DIR",
        default=None,
        help=(
            "durable engine-artifact cache directory: compiled engines "
            "persist across restarts and warm-load into workers "
            "(defaults to $REPRO_ARTIFACT_DIR when set)"
        ),
    )
    parser.add_argument(
        "--no-shm",
        action="store_true",
        help=(
            "do not publish engines to worker processes through "
            "shared-memory segments (also: REPRO_NO_SHM=1); workers fall "
            "back to the artifact cache or the pickled automaton"
        ),
    )


def build_serve_parser() -> argparse.ArgumentParser:
    """The ``repro serve`` flags (mirrors :class:`repro.server.ServerConfig`)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve spanner evaluation over HTTP: POST /evaluate, "
            "POST /enumerate, GET /healthz, GET /metrics.  Concurrent "
            "requests for one pattern share a compile; documents from "
            "many requests are micro-batched onto shared workers; "
            "SIGTERM drains gracefully.  See docs/server.md."
        ),
    )
    _add_serve_flags(parser)
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    """The ``repro worker`` flags (a serve instance that joins a cluster)."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description=(
            "Run a rack worker node: a full spanner server (all the "
            "'repro serve' endpoints and flags) that registers with a "
            "cluster coordinator, heartbeats, and advertises its warm "
            "engine fingerprints so the coordinator can route with cache "
            "affinity.  See docs/cluster.md."
        ),
    )
    parser.add_argument(
        "--join",
        required=True,
        metavar="URL",
        help="coordinator to register with, e.g. http://127.0.0.1:8080",
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="URL",
        help=(
            "URL the coordinator should reach this node at (default: the "
            "bound http://host:port; set this behind NAT or 0.0.0.0 binds)"
        ),
    )
    # Workers default to a free port so several fit on one host.
    _add_serve_flags(parser, default_port=0)
    return parser


def build_coordinate_parser() -> argparse.ArgumentParser:
    """The ``repro coordinate`` flags (serve flags + cluster cadence)."""
    parser = argparse.ArgumentParser(
        prog="repro coordinate",
        description=(
            "Run a cluster coordinator: the front door that shards "
            "corpus jobs across registered worker nodes with "
            "fingerprint-affinity routing, requeues shards from dead "
            "nodes, degrades to local execution when the cluster is "
            "empty, and aggregates cluster-wide /metrics.  See "
            "docs/cluster.md."
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=_positive_float,
        default=2.0,
        metavar="SECONDS",
        help="heartbeat cadence dictated to worker nodes (default 2)",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "evict a node after this long without a beat "
            "(default: 3x the interval)"
        ),
    )
    parser.add_argument(
        "--node-timeout",
        type=_positive_float,
        default=30.0,
        metavar="SECONDS",
        help="per-request socket timeout talking to a node (default 30)",
    )
    parser.add_argument(
        "--node-retries",
        type=_nonnegative_int,
        default=2,
        metavar="N",
        help=(
            "extra requeue attempts per batch beyond one try per known "
            "node (default 2)"
        ),
    )
    parser.add_argument(
        "--cluster-threads",
        type=_positive_int,
        default=16,
        metavar="N",
        help="concurrent remote batches kept in flight (default 16)",
    )
    _add_serve_flags(parser)
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    """The ``repro query`` flags (multi-query evaluation via a QuerySet)."""
    parser = argparse.ArgumentParser(
        prog="repro query",
        description=(
            "Evaluate a set of named algebra queries (union / projection / "
            "join over RGX and named sub-queries) against documents.  The "
            "queries compile into one shared engine, so every document is "
            "scanned once no matter how many queries are registered.  See "
            "docs/cli.md for the query spec forms."
        ),
        epilog=(
            "examples:\n"
            "  echo 'Seller: John, ID75' | repro query -q "
            "seller='.*Seller: x{[^,]*},.*'\n"
            "  repro query --queries rules.json --glob 'logs/*.txt' "
            "--workers 4 --ndjson\n"
            "  repro query -q a='x{a+}' -q b='x{a+}|y{b+}' --explain\n"
        ),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "-q",
        "--query",
        action="append",
        default=[],
        metavar="NAME=PATTERN",
        help="register one named RGX query (repeatable)",
    )
    parser.add_argument(
        "--queries",
        metavar="FILE",
        help=(
            "register queries from a JSON file: an object mapping names "
            "to query specs (RGX text or the algebra spec form)"
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        metavar="file",
        help="document file(s); defaults to stdin, several run as a batch",
    )
    parser.add_argument(
        "--glob",
        action="append",
        default=[],
        metavar="PATTERN",
        help="add files matching a glob pattern (repeatable; ** recurses)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="evaluate a batch across N worker processes (default 1)",
    )
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=None,
        metavar="N",
        help="documents shipped to a worker per task (default 8)",
    )
    parser.add_argument(
        "--ndjson",
        action="store_true",
        help=(
            "one JSON object per document (keys: doc, queries, error) "
            "instead of one per mapping"
        ),
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="emit [begin, end] positions instead of contents",
    )
    parser.add_argument(
        "--opt-level",
        type=int,
        choices=(0, 1, 2),
        default=None,
        help="compilation planner opt level for the combined engine",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the query-set sharing report, then exit",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help=(
            "after the run, print kernel memo sizes and cache hit/miss "
            "counters to stderr (worker counters merged in)"
        ),
    )
    return parser


def _run_query(argv: list[str], stdin: str | None = None) -> int:
    """The ``repro query`` subcommand: many named queries, one engine."""
    from repro.service.cache import DEFAULT_CACHE
    from repro.service.queryset import QuerySet

    arguments = build_query_parser().parse_args(argv)
    queries = QuerySet(opt_level=arguments.opt_level, cache=DEFAULT_CACHE)
    if arguments.queries:
        try:
            with open(arguments.queries, encoding="utf-8") as handle:
                specs = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"error: cannot read {arguments.queries}: {error}",
                file=sys.stderr,
            )
            return 2
        if not isinstance(specs, dict):
            print(
                "error: --queries file must be a JSON object "
                "mapping names to query specs",
                file=sys.stderr,
            )
            return 2
        try:
            for name, spec in specs.items():
                queries.register(name, spec)
        except SpannerError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    for item in arguments.query:
        name, equals, pattern = item.partition("=")
        if not equals or not name or not pattern:
            print(
                f"error: -q/--query needs NAME=PATTERN, got {item!r}",
                file=sys.stderr,
            )
            return 2
        source: object = pattern
        if pattern.lstrip().startswith("{"):
            # No RGX pattern starts with a bare '{' (bindings need a
            # variable name first), so this is the JSON spec form.
            try:
                source = json.loads(pattern)
            except ValueError as error:
                print(
                    f"error: query {name!r}: invalid JSON spec: {error}",
                    file=sys.stderr,
                )
                return 2
        try:
            queries.register(name, source)
        except SpannerError as error:
            print(f"error: query {name!r}: {error}", file=sys.stderr)
            return 2
    if not len(queries):
        print(
            "error: no queries registered; "
            "use -q NAME=PATTERN and/or --queries FILE",
            file=sys.stderr,
        )
        return 2
    try:
        compiled = queries.compile()
    except SpannerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.explain:
        print(queries.explain())
        return 0

    records, failures, batch = _load_records(arguments, stdin)
    if failures:
        if arguments.ndjson:
            for path, message in failures:
                print(
                    json.dumps(
                        {"doc": path, "queries": None, "error": message},
                        sort_keys=True,
                        ensure_ascii=False,
                    )
                )
        else:
            path, message = failures[0]
            print(f"error: cannot read {path}: {message}", file=sys.stderr)
            return 2

    worker_stats: dict = {}
    results = queries.evaluate_corpus(
        records,
        workers=arguments.workers,
        batch_size=arguments.batch_size,
        spans=arguments.spans,
        on_worker_stats=worker_stats.update if arguments.stats else None,
    )
    code = 0
    for result in results:
        if arguments.ndjson:
            payload = {
                "doc": result.doc_id,
                "queries": None
                if result.queries is None
                else {
                    name: [
                        _decoded(record, arguments.spans) for record in rows
                    ]
                    for name, rows in result.queries.items()
                },
                "error": result.error,
            }
            print(json.dumps(payload, sort_keys=True, ensure_ascii=False))
            continue
        if not result.ok:
            print(f"error: {result.doc_id}: {result.error}", file=sys.stderr)
            return 2
        for name, rows in result.queries.items():
            for record in rows:
                payload = _decoded(record, arguments.spans)
                payload["_query"] = name
                if batch:
                    payload["_file"] = result.doc_id
                print(json.dumps(payload, sort_keys=True, ensure_ascii=False))
    if arguments.stats:
        _print_stats(compiled.engine, arguments.workers, worker_stats or None)
    return code


def _server_config_kwargs(arguments) -> dict | None:
    """ServerConfig keyword arguments from parsed serve-family flags
    (None after printing an error when validation fails)."""
    if arguments.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return None
    if arguments.port < 0 or arguments.port > 65535:
        print("error: --port must be in 0..65535", file=sys.stderr)
        return None
    import os

    artifact_dir = arguments.artifact_dir or os.environ.get(
        "REPRO_ARTIFACT_DIR"
    )
    return dict(
        host=arguments.host,
        port=arguments.port,
        workers=arguments.workers,
        batch_max_size=arguments.batch_size,
        batch_max_delay=arguments.batch_delay,
        max_pending=arguments.max_pending,
        drain_grace=arguments.drain_grace,
        artifact_dir=artifact_dir,
        shared_memory=False if arguments.no_shm else None,
        task_timeout=arguments.task_timeout,
        max_rebuilds=arguments.max_rebuilds,
        degraded_reset=arguments.degraded_reset,
    )


def _run_serve(argv: list[str]) -> int:
    from repro.server import ServerConfig, serve

    arguments = build_serve_parser().parse_args(argv)
    kwargs = _server_config_kwargs(arguments)
    if kwargs is None:
        return 2
    return serve(ServerConfig(**kwargs))


def _run_worker(argv: list[str]) -> int:
    from repro.cluster import run_worker
    from repro.cluster.protocol import split_url
    from repro.server import ServerConfig

    arguments = build_worker_parser().parse_args(argv)
    kwargs = _server_config_kwargs(arguments)
    if kwargs is None:
        return 2
    for flag, url in (
        ("--join", arguments.join),
        ("--advertise", arguments.advertise),
    ):
        if url is None:
            continue
        try:
            split_url(url)
        except ValueError as error:
            print(f"error: {flag}: {error}", file=sys.stderr)
            return 2
    return run_worker(
        ServerConfig(**kwargs),
        join_url=arguments.join,
        advertise_url=arguments.advertise,
    )


def _run_coordinate(argv: list[str]) -> int:
    from repro.cluster import CoordinatorConfig, coordinate

    arguments = build_coordinate_parser().parse_args(argv)
    kwargs = _server_config_kwargs(arguments)
    if kwargs is None:
        return 2
    if (
        arguments.heartbeat_timeout is not None
        and arguments.heartbeat_timeout <= arguments.heartbeat_interval
    ):
        print(
            "error: --heartbeat-timeout must exceed --heartbeat-interval",
            file=sys.stderr,
        )
        return 2
    config = CoordinatorConfig(
        **kwargs,
        heartbeat_interval=arguments.heartbeat_interval,
        heartbeat_timeout=arguments.heartbeat_timeout,
        node_timeout=arguments.node_timeout,
        node_retries=arguments.node_retries,
        cluster_threads=arguments.cluster_threads,
    )
    return coordinate(config)


def _extract(spanner: Spanner, document: str, engine: str, spans: bool):
    if engine == "compiled":
        return spanner.compiled.extract(document, spans=spans)
    return spanner.extract(document, spans=spans)


def _count(spanner: Spanner, document: str, engine: str) -> int:
    if engine == "compiled":
        return spanner.compiled.count(document)
    return len(spanner.mappings(document))


def _decoded(record: dict, spans: bool) -> dict:
    if spans:
        return {
            variable: [span.begin, span.end]
            for variable, span in record.items()
        }
    return dict(record)


def _emit(record: dict, spans: bool, file_name: str | None) -> None:
    payload = _decoded(record, spans)
    if file_name is not None:
        payload["_file"] = file_name
    print(json.dumps(payload, sort_keys=True, ensure_ascii=False))


def _collect_files(arguments) -> list[str]:
    """Explicit files plus sorted glob matches, first occurrence wins."""
    paths: list[str] = list(arguments.files)
    for pattern in arguments.glob:
        paths.extend(sorted(globbing.glob(pattern, recursive=True)))
    seen: set[str] = set()
    unique = []
    for path in paths:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def _load_records(arguments, stdin: str | None):
    """Read files/globs (or stdin) into ``(doc_id, text)`` records.

    Returns ``(records, failures, batch)``: unreadable files become
    ``(path, message)`` failures for the caller to report in its own
    format (ndjson error records, or stderr + exit 2).
    """
    files = _collect_files(arguments)
    if not files:
        text = stdin if stdin is not None else sys.stdin.read()
        return [("<stdin>", text)], [], False
    records, failures = [], []
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                records.append((path, handle.read()))
        except OSError as error:
            failures.append((path, str(error)))
    return records, failures, len(files) > 1


def _attach_artifacts(directory: str | None):
    """Back the process-wide spanner cache with an on-disk artifact store.

    ``directory`` (the ``--artifact-dir`` flag) wins; otherwise
    ``$REPRO_ARTIFACT_DIR``; with neither, no store is attached and the
    run behaves exactly as before.  The resolved directory is exported
    back into the environment so worker processes inherit it.
    """
    import os

    from repro.service.artifact_store import ARTIFACT_DIR_ENV, ArtifactStore
    from repro.service.cache import DEFAULT_CACHE

    directory = directory or os.environ.get(ARTIFACT_DIR_ENV)
    if not directory:
        return None
    store = ArtifactStore(directory)
    DEFAULT_CACHE.attach_artifacts(store)
    os.environ[ARTIFACT_DIR_ENV] = store.root
    return store


def _print_stats(
    engine,
    workers: int,
    worker_stats: dict | None = None,
    artifact_store=None,
) -> None:
    """The ``--stats`` report: kernel memos + cache counters, to stderr.

    With ``--workers > 1`` the per-document counters accrue in the worker
    processes; ``worker_stats`` (the :meth:`WorkerPool.stats` summary the
    run captured) is summed into the local engine's tables so the report
    covers the work actually done.
    """
    from repro.service.cache import DEFAULT_CACHE

    def formatted(table: dict) -> str:
        return " ".join(f"{key}={value}" for key, value in table.items())

    def merged(local: dict, remote: dict) -> dict:
        combined = dict(local)
        for key, value in remote.items():
            combined[key] = combined.get(key, 0) + value
        return combined

    kernel = engine.kernel_stats()
    cache = engine.cache_stats()
    reported = bool(worker_stats) and worker_stats.get("workers", 0) > 0
    if reported:
        kernel = merged(kernel, worker_stats["kernel"])
        cache = merged(cache, worker_stats["cache"])
    print(f"stats: kernel {formatted(kernel)}", file=sys.stderr)
    print(f"stats: engine {formatted(cache)}", file=sys.stderr)
    print(
        f"stats: spanner-cache {formatted(DEFAULT_CACHE.stats())}",
        file=sys.stderr,
    )
    artifacts: dict = {}
    if artifact_store is not None:
        artifacts = dict(artifact_store.counters())
    if worker_stats:
        for key, value in worker_stats.get("artifacts", {}).items():
            artifacts[key] = artifacts.get(key, 0) + value
    if artifacts:
        print(f"stats: artifacts {formatted(artifacts)}", file=sys.stderr)
    shm = dict(worker_stats.get("shm", {})) if worker_stats else {}
    if shm:
        print(f"stats: shm {formatted(shm)}", file=sys.stderr)
    resilience = (
        dict(worker_stats.get("resilience", {})) if worker_stats else {}
    )
    if resilience:
        summary = {
            key: resilience[key]
            for key in ("restarts", "retries", "timeouts", "failed")
            if key in resilience
        }
        print(f"stats: resilience {formatted(summary)}", file=sys.stderr)
    if reported:
        print(
            f"stats: merged counters from {worker_stats['workers']} "
            f"worker process(es)",
            file=sys.stderr,
        )
    elif workers > 1:
        print(
            "stats: note: no worker counters were reported",
            file=sys.stderr,
        )


def _run_corpus(
    engine,
    arguments,
    records: list[tuple[str, str]],
    batch: bool,
    on_worker_stats=None,
) -> int:
    """Batch mode through the service layer (``--workers`` / ``--ndjson``)."""
    from repro.service.evaluate import extract_corpus

    results = extract_corpus(
        engine,
        records,
        workers=arguments.workers,
        spans=arguments.spans,
        on_worker_stats=on_worker_stats,
        task_timeout=getattr(arguments, "task_timeout", None),
    )

    if arguments.count:
        total = 0
        for result in results:
            if not result.ok:
                print(
                    f"error: {result.doc_id}: {result.error}", file=sys.stderr
                )
                return 2
            total += len(result.mappings)
        print(total)
        return 0

    for result in results:
        if arguments.ndjson:
            payload = {
                "doc": result.doc_id,
                "mappings": None
                if result.mappings is None
                else [
                    _decoded(record, arguments.spans)
                    for record in result.mappings
                ],
                "error": result.error,
            }
            print(json.dumps(payload, sort_keys=True, ensure_ascii=False))
            continue
        if not result.ok:
            print(f"error: {result.doc_id}: {result.error}", file=sys.stderr)
            return 2
        for record in result.mappings:
            _emit(record, arguments.spans, result.doc_id if batch else None)
    return 0


def run(argv: list[str] | None = None, stdin: str | None = None) -> int:
    """Entry point; returns the process exit code (testable directly)."""
    raw_arguments = sys.argv[1:] if argv is None else argv
    if raw_arguments and raw_arguments[0] == "serve":
        return _run_serve(raw_arguments[1:])
    if raw_arguments and raw_arguments[0] == "worker":
        return _run_worker(raw_arguments[1:])
    if raw_arguments and raw_arguments[0] == "coordinate":
        return _run_coordinate(raw_arguments[1:])
    if raw_arguments and raw_arguments[0] == "query":
        return _run_query(raw_arguments[1:], stdin)
    if raw_arguments and raw_arguments[0] == "cache":
        return _run_cache(raw_arguments[1:])
    arguments = build_parser().parse_args(raw_arguments)
    if arguments.engine == "seed" and (arguments.workers > 1 or arguments.ndjson):
        print(
            "error: --workers/--ndjson are served by the corpus service; "
            "they cannot be combined with --engine seed",
            file=sys.stderr,
        )
        return 2
    if arguments.engine == "seed" and arguments.stats:
        print(
            "error: --stats reads the compiled engine's counters; "
            "it cannot be combined with --engine seed",
            file=sys.stderr,
        )
        return 2
    if arguments.ndjson and arguments.count:
        print(
            "error: --count cannot be combined with --ndjson "
            "(per-document mapping counts are visible in the ndjson output)",
            file=sys.stderr,
        )
        return 2
    try:
        spanner = Spanner.compile(
            arguments.pattern, opt_level=arguments.opt_level
        )
    except SpannerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.explain:
        print(spanner.plan.explain())
        return 0

    if arguments.check:
        print(f"variables:    {sorted(spanner.variables)}")
        print(f"sequential:   {spanner.is_sequential}")
        satisfiable = spanner.is_satisfiable()
        print(f"satisfiable:  {satisfiable}")
        if satisfiable:
            print(f"witness:      {spanner.witness()!r}")
        return 0

    records, failures, batch = _load_records(arguments, stdin)
    if failures:
        if arguments.ndjson:
            for path, message in failures:
                print(
                    json.dumps(
                        {"doc": path, "mappings": None, "error": message},
                        sort_keys=True,
                        ensure_ascii=False,
                    )
                )
        else:
            path, message = failures[0]
            print(f"error: cannot read {path}: {message}", file=sys.stderr)
            return 2
    documents = [text for _, text in records]

    if arguments.engine == "compiled":
        # Every compiled run goes through the corpus service.  Resolving
        # the engine through the service cache up front means ``--stats``
        # reads the counters of the very engine that does the work (the
        # cache may hand back an engine compiled earlier in this
        # process).  The seed engine keeps the original loop below.
        from repro.service.cache import DEFAULT_CACHE, cached_spanner

        store = _attach_artifacts(arguments.artifact_dir)
        if store is not None:
            # The pattern string routes through the store's pattern refs,
            # so a warm cache loads the finished engine from disk.
            engine = DEFAULT_CACHE.get(arguments.pattern, arguments.opt_level)
        else:
            engine = cached_spanner(spanner.compiled)
        worker_stats: dict = {}
        code = _run_corpus(
            engine,
            arguments,
            records,
            batch,
            on_worker_stats=worker_stats.update if arguments.stats else None,
        )
        if arguments.stats:
            _print_stats(
                engine, arguments.workers, worker_stats or None, store
            )
        return code

    if arguments.count:
        total = sum(
            _count(spanner, document, arguments.engine)
            for document in documents
        )
        print(total)
        return 0

    for position, document in enumerate(documents):
        file_name = records[position][0] if batch else None
        for record in _extract(
            spanner, document, arguments.engine, arguments.spans
        ):
            _emit(record, arguments.spans, file_name)
    return 0


def main() -> None:
    """Console-script entry point (``repro`` after ``pip install -e .``)."""
    sys.exit(run())
