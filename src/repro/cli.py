"""Command-line interface: ``python -m repro``.

Extract mappings from documents with a variable regex, in the paper's
mapping semantics::

    $ python -m repro '.*Seller: x{[^,\\n]*},.*' registry.csv
    {"x": "John"}
    {"x": "Mark"}

Modes:

* default — one JSON object per output mapping (absent optional fields
  are simply missing keys);
* ``--spans`` — emit ``[begin, end]`` pairs instead of contents;
* ``--check`` — print satisfiability, sequentiality and a witness
  document for the pattern, then exit (static analysis, Section 6);
* ``--count`` — print only the number of mappings.

Reads from stdin when no file is given.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.spanner import Spanner
from repro.util.errors import SpannerError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Document-spanner extraction with mapping semantics "
            "(Maturana, Riveros, Vrgoč, PODS 2018)."
        ),
    )
    parser.add_argument("pattern", help="variable regex, e.g. '.*x{a+}.*'")
    parser.add_argument(
        "file",
        nargs="?",
        help="document file (defaults to stdin)",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="emit [begin, end] positions instead of contents",
    )
    parser.add_argument(
        "--count",
        action="store_true",
        help="print only the number of output mappings",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="static analysis of the pattern (no document needed)",
    )
    return parser


def run(argv: list[str] | None = None, stdin: str | None = None) -> int:
    """Entry point; returns the process exit code (testable directly)."""
    arguments = build_parser().parse_args(argv)
    try:
        spanner = Spanner.compile(arguments.pattern)
    except SpannerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.check:
        print(f"variables:    {sorted(spanner.variables)}")
        print(f"sequential:   {spanner.is_sequential}")
        satisfiable = spanner.is_satisfiable()
        print(f"satisfiable:  {satisfiable}")
        if satisfiable:
            print(f"witness:      {spanner.witness()!r}")
        return 0

    if arguments.file is not None:
        with open(arguments.file, encoding="utf-8") as handle:
            document = handle.read()
    elif stdin is not None:
        document = stdin
    else:
        document = sys.stdin.read()

    if arguments.count:
        print(len(spanner.mappings(document)))
        return 0

    for record in spanner.extract(document, spans=arguments.spans):
        if arguments.spans:
            payload = {
                variable: [span.begin, span.end]
                for variable, span in record.items()
            }
        else:
            payload = record
        print(json.dumps(payload, sort_keys=True, ensure_ascii=False))
    return 0
