"""Command-line interface: ``python -m repro``.

Extract mappings from documents with a variable regex, in the paper's
mapping semantics::

    $ python -m repro '.*Seller: x{[^,\\n]*},.*' registry.csv
    {"x": "John"}
    {"x": "Mark"}

Modes:

* default — one JSON object per output mapping (absent optional fields
  are simply missing keys);
* ``--spans`` — emit ``[begin, end]`` pairs instead of contents;
* ``--check`` — print satisfiability, sequentiality and a witness
  document for the pattern, then exit (static analysis, Section 6);
* ``--count`` — print only the number of mappings;
* ``--engine {compiled,seed}`` — evaluation engine; ``compiled`` (the
  default) uses :mod:`repro.engine`'s tables, pruning, and memoisation.

Reads from stdin when no file is given.  With several files the pattern is
compiled once and evaluated in batch; each record carries a ``"_file"``
key identifying its document.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.spanner import Spanner
from repro.util.errors import SpannerError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Document-spanner extraction with mapping semantics "
            "(Maturana, Riveros, Vrgoč, PODS 2018)."
        ),
    )
    parser.add_argument("pattern", help="variable regex, e.g. '.*x{a+}.*'")
    parser.add_argument(
        "files",
        nargs="*",
        metavar="file",
        help="document file(s); defaults to stdin, several run as a batch",
    )
    parser.add_argument(
        "--spans",
        action="store_true",
        help="emit [begin, end] positions instead of contents",
    )
    parser.add_argument(
        "--count",
        action="store_true",
        help="print only the number of output mappings",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="static analysis of the pattern (no document needed)",
    )
    parser.add_argument(
        "--engine",
        choices=("compiled", "seed"),
        default="compiled",
        help="evaluation engine (default: the compiled engine)",
    )
    return parser


def _extract(spanner: Spanner, document: str, engine: str, spans: bool):
    if engine == "compiled":
        return spanner.compiled.extract(document, spans=spans)
    return spanner.extract(document, spans=spans)


def _count(spanner: Spanner, document: str, engine: str) -> int:
    if engine == "compiled":
        return spanner.compiled.count(document)
    return len(spanner.mappings(document))


def _emit(record: dict, spans: bool, file_name: str | None) -> None:
    if spans:
        payload: dict = {
            variable: [span.begin, span.end]
            for variable, span in record.items()
        }
    else:
        payload = dict(record)
    if file_name is not None:
        payload["_file"] = file_name
    print(json.dumps(payload, sort_keys=True, ensure_ascii=False))


def run(argv: list[str] | None = None, stdin: str | None = None) -> int:
    """Entry point; returns the process exit code (testable directly)."""
    arguments = build_parser().parse_args(argv)
    try:
        spanner = Spanner.compile(arguments.pattern)
    except SpannerError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if arguments.check:
        print(f"variables:    {sorted(spanner.variables)}")
        print(f"sequential:   {spanner.is_sequential}")
        satisfiable = spanner.is_satisfiable()
        print(f"satisfiable:  {satisfiable}")
        if satisfiable:
            print(f"witness:      {spanner.witness()!r}")
        return 0

    if arguments.files:
        documents = []
        for path in arguments.files:
            try:
                with open(path, encoding="utf-8") as handle:
                    documents.append(handle.read())
            except OSError as error:
                print(f"error: cannot read {path}: {error}", file=sys.stderr)
                return 2
    elif stdin is not None:
        documents = [stdin]
    else:
        documents = [sys.stdin.read()]
    batch = len(arguments.files) > 1

    if arguments.count:
        total = sum(
            _count(spanner, document, arguments.engine)
            for document in documents
        )
        print(total)
        return 0

    for position, document in enumerate(documents):
        file_name = arguments.files[position] if batch else None
        for record in _extract(
            spanner, document, arguments.engine, arguments.spans
        ):
            _emit(record, arguments.spans, file_name)
    return 0


def main() -> None:
    """Console-script entry point (``repro`` after ``pip install -e .``)."""
    sys.exit(run())
