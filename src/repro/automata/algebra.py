"""The spanner algebra on variable-set automata: ∪, π, ⋈ (Theorem 4.5).

The paper closes VA under union, projection and join of *mappings*:

* **union** — ε-branch to both automata (linear);
* **projection** ``π_Y(A)`` — operations of dropped variables become
  ε-moves, but only along runs where they were used consistently; we track
  a per-dropped-variable status so invalid reuse cannot sneak in (the
  paper does this via the path-union normal form);
* **join** ``A1 ⋈ A2`` — a product that synchronises *shared* variable
  operations position-by-position.  Because the mapping join keeps
  ``µ1(x)`` even when ``µ2`` leaves ``x`` undefined, each shared variable
  may be used by both runs, by only one, or by neither; the construction
  branches over that choice per shared variable and, within a position,
  buffers the shared operations one side has performed until the other
  matches them.  The paper proves an exponential blowup is unavoidable
  here — benchmark E15/E16 report the measured sizes.

All three are cross-validated against the semantic operations on mapping
sets computed by the reference evaluator.
"""

from __future__ import annotations

from itertools import product

from repro.automata.labels import EPS, Close, Eps, Label, Open, Sym
from repro.automata.sequential import make_sequential
from repro.automata.va import VA
from repro.spans.mapping import Variable

_FRESH, _OPEN, _DONE = range(3)


def union_vastk(first, second) -> VA:
    """``A1 ∪ A2`` for variable-stack automata (Theorem 4.5's
    ``VAstk^{∪,π,⋈} ≡ VA``): the result is a VA, as the theorem states."""
    return union_va(first.to_va(), second.to_va())


def project_vastk(automaton, keep) -> VA:
    """``π_keep(A)`` for a variable-stack automaton."""
    return project_va(automaton.to_va(), keep)


def join_vastk(first, second) -> VA:
    """``A1 ⋈ A2`` for variable-stack automata.

    The join of two hierarchical spanners need not be hierarchical (the
    shared variables can force overlaps), which is exactly why the result
    lives in VA rather than VAstk — the paper's Theorem 4.5 point.
    """
    return join_va(first.to_va(), second.to_va())


def union_va(first: VA, second: VA) -> VA:
    """``A1 ∪ A2`` — accepts exactly ``⟦A1⟧_d ∪ ⟦A2⟧_d``."""
    builder_offset_first = 2
    builder_offset_second = 2 + first.num_states
    total = 2 + first.num_states + second.num_states
    transitions: list[tuple[int, Label, int]] = [
        (0, EPS, first.initial + builder_offset_first),
        (0, EPS, second.initial + builder_offset_second),
        (first.final + builder_offset_first, EPS, 1),
        (second.final + builder_offset_second, EPS, 1),
    ]
    for source, label, target in first.transitions:
        transitions.append(
            (source + builder_offset_first, label, target + builder_offset_first)
        )
    for source, label, target in second.transitions:
        transitions.append(
            (source + builder_offset_second, label, target + builder_offset_second)
        )
    return VA(total, 0, 1, tuple(transitions))


def project_va(va: VA, keep: set[Variable] | frozenset[Variable]) -> VA:
    """``π_keep(A)`` — mappings restricted to ``keep``.

    Dropped variables' operations turn into ε-moves guarded by a status
    product, so a dropped variable still has to be used like a variable
    (opened at most once, closed only while open) even though it no longer
    appears in the output.
    """
    dropped = tuple(sorted(va.mentioned_variables - set(keep)))
    index = {variable: i for i, variable in enumerate(dropped)}
    if not dropped:
        return va

    states: dict[tuple[int, tuple[int, ...]], int] = {}
    transitions: list[tuple[int, Label, int]] = []

    def state_of(key: tuple[int, tuple[int, ...]]) -> int:
        if key not in states:
            states[key] = len(states)
        return states[key]

    initial_key = (va.initial, (_FRESH,) * len(dropped))
    state_of(initial_key)
    frontier = [initial_key]
    explored = {initial_key}
    accepting: list[int] = []
    while frontier:
        key = frontier.pop()
        state, statuses = key
        source = states[key]
        if state == va.final:
            # Open-but-unclosed dropped variables are unused: accept freely.
            accepting.append(source)
        for label, target in va.out_edges(state):
            if isinstance(label, Open) and label.variable in index:
                i = index[label.variable]
                if statuses[i] != _FRESH:
                    continue
                next_statuses = statuses[:i] + (_OPEN,) + statuses[i + 1 :]
                out_label: Label = EPS
            elif isinstance(label, Close) and label.variable in index:
                i = index[label.variable]
                if statuses[i] != _OPEN:
                    continue
                next_statuses = statuses[:i] + (_DONE,) + statuses[i + 1 :]
                out_label = EPS
            else:
                next_statuses = statuses
                out_label = label
            next_key = (target, next_statuses)
            if next_key not in explored:
                explored.add(next_key)
                frontier.append(next_key)
            transitions.append((source, out_label, state_of(next_key)))
    final = len(states)
    for state in accepting:
        transitions.append((state, EPS, final))
    return VA(len(states) + 1, states[initial_key], final, tuple(transitions)).trimmed()


def join_va(first: VA, second: VA) -> VA:
    """``A1 ⋈ A2`` with ``⟦A1 ⋈ A2⟧_d = ⟦A1⟧_d ⋈ ⟦A2⟧_d``.

    Both inputs are sequentialised first (Proposition 5.6) so that every
    open is eventually closed; "used" then coincides with "assigned",
    which makes the per-variable usage choice well defined.
    """
    first = make_sequential(first)
    second = make_sequential(second)
    shared = tuple(sorted(first.variables & second.variables))

    pieces: list[VA] = []
    # Choose, for every shared variable, who assigns it.
    for choice in product(("both", "first", "second", "neither"), repeat=len(shared)):
        assignment = dict(zip(shared, choice))
        piece = _join_product(first, second, assignment)
        if piece is not None:
            pieces.append(piece)
    if not pieces:
        return VA(2, 0, 1, ())
    result = pieces[0]
    for piece in pieces[1:]:
        result = union_va(result, piece)
    return result.trimmed()


def _join_product(
    first: VA, second: VA, assignment: dict[Variable, str]
) -> VA | None:
    """The synchronised product for one usage choice of the shared variables.

    Product states are ``(q1, q2, S, T)``: ``S`` holds shared operations
    performed by the first run at the current position and not yet matched
    by the second, ``T`` the converse.  Letters require ``S = T = ∅`` and
    advance both runs on the intersection of their predicates.  A shared
    operation is emitted by whichever side performs it first; the other
    side's matching move consumes it as an ε-step.
    """
    states: dict[tuple, int] = {}
    transitions: list[tuple[int, Label, int]] = []

    def state_of(key: tuple) -> int:
        if key not in states:
            states[key] = len(states)
        return states[key]

    def allowed(side: str, label: Label) -> bool:
        variable = label.variable  # type: ignore[union-attr]
        usage = assignment.get(variable)
        if usage is None:
            return True  # not shared: free for its own side
        if usage == "neither":
            return False
        if usage == "both":
            return True
        return usage == side

    initial_key = (first.initial, second.initial, frozenset(), frozenset())
    state_of(initial_key)
    frontier = [initial_key]
    explored = {initial_key}
    while frontier:
        key = frontier.pop()
        q1, q2, pending1, pending2 = key
        source = states[key]

        def emit(label: Label, next_key: tuple) -> None:
            if next_key not in explored:
                explored.add(next_key)
                frontier.append(next_key)
            transitions.append((source, label, state_of(next_key)))

        # Letter moves: both runs consume the same character.
        if not pending1 and not pending2:
            for label1, target1 in first.out_edges(q1):
                if not isinstance(label1, Sym):
                    continue
                for label2, target2 in second.out_edges(q2):
                    if not isinstance(label2, Sym):
                        continue
                    both = label1.charset.intersect(label2.charset)
                    if both is None:
                        continue
                    emit(Sym(both), (target1, target2, pending1, pending2))
        # First-run moves.
        for label, target in first.out_edges(q1):
            if isinstance(label, Eps):
                emit(EPS, (target, q2, pending1, pending2))
            elif isinstance(label, (Open, Close)):
                if not allowed("first", label):
                    continue
                if label.variable in assignment and assignment[label.variable] == "both":
                    if label in pending2:
                        emit(EPS, (target, q2, pending1, pending2 - {label}))
                    else:
                        emit(label, (target, q2, pending1 | {label}, pending2))
                else:
                    emit(label, (target, q2, pending1, pending2))
        # Second-run moves.
        for label, target in second.out_edges(q2):
            if isinstance(label, Eps):
                emit(EPS, (q1, target, pending1, pending2))
            elif isinstance(label, (Open, Close)):
                if not allowed("second", label):
                    continue
                if label.variable in assignment and assignment[label.variable] == "both":
                    if label in pending1:
                        emit(EPS, (q1, target, pending1 - {label}, pending2))
                    else:
                        emit(label, (q1, target, pending1, pending2 | {label}))
                else:
                    emit(label, (q1, target, pending1, pending2))

    final_key = (first.final, second.final, frozenset(), frozenset())
    if final_key not in states:
        return None
    result = VA(
        num_states=len(states),
        initial=states[initial_key],
        final=states[final_key],
        transitions=tuple(transitions),
    ).trimmed()
    return result
