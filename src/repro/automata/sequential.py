"""Sequential variable automata (Propositions 5.5 and 5.6).

A path of a VA from the initial to the final state is *sequential* when
every variable is opened at most once, closed exactly once if opened, and
closed only after being opened.  A VA is sequential when every such path
is.  Sequentiality is the paper's key tractability condition: it makes
``Eval`` polynomial (Theorem 5.7), satisfiability NLOGSPACE (Theorem 6.2),
and containment of deterministic point-disjoint automata polynomial
(Theorem 6.7).

* :func:`is_sequential` implements the (N)LOGSPACE check of Proposition 5.5
  as a deterministic product search: for each variable, explore
  ``(state, status)`` pairs and look for a violation.
* :func:`make_sequential` implements Proposition 5.6: every VA has an
  equivalent sequential VA.  The construction is a product with a
  per-variable status vector ``{fresh, open, done, skipped}`` where
  ``skipped`` replaces an "open that is never closed" (such opens produce
  no assignment, so an ε-move is equivalent) — this both preserves the
  semantics and guarantees every surviving path is sequential.
"""

from __future__ import annotations

from repro.automata.labels import EPS, Close, Eps, Label, Open, Sym
from repro.automata.va import VA
from repro.spans.mapping import Variable
from repro.util.errors import BudgetExceededError

_FRESH, _OPEN, _DONE, _SKIPPED = range(4)


def is_sequential(va: VA) -> bool:
    """Proposition 5.5's check, one variable at a time.

    For variable ``x`` we walk the product of the automaton with the status
    automaton ``fresh → open → done`` restricted to states that can still
    reach the final state; a non-sequential path exists iff some reachable
    product state admits an incompatible operation, or the final state is
    reachable with status ``open``.
    """
    co_reachable = _co_reachable(va)
    for variable in sorted(va.mentioned_variables):
        if not _sequential_for(va, variable, co_reachable):
            return False
    return True


def _co_reachable(va: VA) -> set[int]:
    backward: dict[int, list[int]] = {}
    for source, _, target in va.transitions:
        backward.setdefault(target, []).append(source)
    seen = {va.final}
    frontier = [va.final]
    while frontier:
        state = frontier.pop()
        for previous in backward.get(state, ()):
            if previous not in seen:
                seen.add(previous)
                frontier.append(previous)
    return seen


def _sequential_for(va: VA, variable: Variable, co_reachable: set[int]) -> bool:
    seen = {(va.initial, _FRESH)}
    frontier = [(va.initial, _FRESH)]
    while frontier:
        state, status = frontier.pop()
        for label, target in va.out_edges(state):
            if target not in co_reachable:
                # The paper's walk stops at the final state; transitions that
                # cannot be part of an initial-to-final path are irrelevant.
                continue
            if isinstance(label, Open) and label.variable == variable:
                if status != _FRESH:
                    return False
                next_status = _OPEN
            elif isinstance(label, Close) and label.variable == variable:
                if status != _OPEN:
                    return False
                next_status = _DONE
            else:
                next_status = status
            nxt = (target, next_status)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    # A path reaching the final state with the variable still open is
    # non-sequential (condition (2) of the definition).
    return (va.final, _OPEN) not in seen


def make_sequential(
    va: VA, prune: bool = True, max_states: int | None = None
) -> VA:
    """Proposition 5.6: an equivalent sequential VA.

    Product states pair an original state with a status vector over the
    automaton's variables.  Opens from status ``fresh`` proceed normally;
    alternatively an ε-copy marks the variable ``skipped``, standing for
    the original run that opened it and never closed it (which assigns
    nothing).  Closes require status ``open``.  Acceptance requires no
    variable to remain ``open``, and a fresh final state keeps the
    automaton single-final.  ``prune=True`` trims dead states.

    The product is worst-case ``|Q| · 4^k`` states; ``max_states`` aborts
    with :class:`~repro.util.errors.BudgetExceededError` instead of
    exhausting memory (the planner's sequentialisation pass relies on
    this to fall back to the general evaluation path).
    """
    variables = tuple(sorted(va.mentioned_variables))
    index = {variable: i for i, variable in enumerate(variables)}

    states: dict[tuple[int, tuple[int, ...]], int] = {}
    transitions: list[tuple[int, Label, int]] = []

    def state_of(key: tuple[int, tuple[int, ...]]) -> int:
        if key not in states:
            if max_states is not None and len(states) >= max_states:
                raise BudgetExceededError("sequentialisation product", max_states)
            states[key] = len(states)
        return states[key]

    initial_key = (va.initial, (_FRESH,) * len(variables))
    state_of(initial_key)
    frontier = [initial_key]
    explored = {initial_key}
    accepting: list[tuple[int, tuple[int, ...]]] = []

    while frontier:
        key = frontier.pop()
        state, statuses = key
        if state == va.final and _OPEN not in statuses:
            accepting.append(key)
        source = state_of(key)
        for label, target in va.out_edges(state):
            moves: list[tuple[Label, tuple[int, ...]]] = []
            if isinstance(label, (Eps, Sym)):
                moves.append((label, statuses))
            elif isinstance(label, Open):
                i = index[label.variable]
                if statuses[i] == _FRESH:
                    moves.append(
                        (label, statuses[:i] + (_OPEN,) + statuses[i + 1 :])
                    )
                    moves.append(
                        (EPS, statuses[:i] + (_SKIPPED,) + statuses[i + 1 :])
                    )
            else:
                assert isinstance(label, Close)
                i = index[label.variable]
                if statuses[i] == _OPEN:
                    moves.append(
                        (label, statuses[:i] + (_DONE,) + statuses[i + 1 :])
                    )
            for out_label, next_statuses in moves:
                next_key = (target, next_statuses)
                if next_key not in explored:
                    explored.add(next_key)
                    frontier.append(next_key)
                transitions.append((source, out_label, state_of(next_key)))

    final = len(states)
    for key in accepting:
        transitions.append((states[key], EPS, final))
    result = VA(
        num_states=len(states) + 1,
        initial=states[initial_key],
        final=final,
        transitions=tuple(transitions),
    )
    return result.trimmed() if prune else result
