"""Transition labels of variable automata.

A variable-set automaton (paper, Section 3.2) has letter transitions
``(q, a, q')`` and variable transitions ``(q, x⊢, q')`` / ``(q, ⊣x, q')``.
We additionally allow ε-transitions (as the paper's appendix definition
does) and, for variable-*stack* automata, the unnamed ``Pop`` close.

Letters are :class:`~repro.alphabet.CharSet` predicates so that a single
transition can stand for ``Σ`` or ``Σ - {,}``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alphabet import CharSet
from repro.spans.mapping import Variable


@dataclass(frozen=True)
class Label:
    """Base class of transition labels."""

    def is_op(self) -> bool:
        return isinstance(self, (Open, Close, Pop))


@dataclass(frozen=True)
class Eps(Label):
    """An ε-transition: moves state without consuming input."""

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Sym(Label):
    """A letter transition: consumes one character matching the charset."""

    charset: CharSet

    def __str__(self) -> str:
        return str(self.charset)


@dataclass(frozen=True)
class Open(Label):
    """``x⊢`` — open variable ``x`` at the current position."""

    variable: Variable

    def __str__(self) -> str:
        return f"{self.variable}⊢"


@dataclass(frozen=True)
class Close(Label):
    """``⊣x`` — close variable ``x`` at the current position."""

    variable: Variable

    def __str__(self) -> str:
        return f"⊣{self.variable}"


@dataclass(frozen=True)
class Pop(Label):
    """``⊣`` — close the most recently opened variable (VAstk only)."""

    def __str__(self) -> str:
        return "⊣"


EPS = Eps()
POP = Pop()


def sym(char: str) -> Sym:
    """A transition on the single letter ``char``."""
    return Sym(CharSet.single(char))


def any_sym() -> Sym:
    """A transition on any letter (``Σ``)."""
    return Sym(CharSet.any())
