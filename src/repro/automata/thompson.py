"""Thompson construction: RGX → variable automata (Theorem 4.3, one half).

The classical construction extended with one case: ``x{γ}`` becomes an
``x⊢`` transition into the fragment for ``γ`` and a close transition out of
it (``⊣x`` for VA, the unnamed ``⊣`` for VAstk).  Every fragment has a
single entry and a single exit and the construction is linear in the size
of the expression.

The paper's proof of Theorem 5.7 observes that the construction maps
sequential RGX to sequential automata; this is property-tested.
"""

from __future__ import annotations

from repro.automata.labels import EPS, POP, Close, Label, Open, Sym
from repro.automata.va import VA, VABuilder
from repro.automata.vastk import VAStk
from repro.rgx.ast import Concat, Epsilon, Letter, Rgx, Star, Union, VarBind
from repro.util.errors import SpannerError


def to_va(expression: Rgx) -> VA:
    """An equivalent variable-set automaton (named closes)."""
    return _construct(expression, stack_closes=False)


def to_vastk(expression: Rgx) -> VAStk:
    """An equivalent variable-stack automaton (LIFO closes)."""
    return _construct(expression, stack_closes=True)


def _construct(expression: Rgx, stack_closes: bool):
    builder = VABuilder()
    start, end = _fragment(expression, builder, stack_closes)
    if stack_closes:
        return builder.build_vastk(initial=start, final=end)
    return builder.build(initial=start, final=end)


def _fragment(
    expression: Rgx, builder: VABuilder, stack_closes: bool
) -> tuple[int, int]:
    """Build a fragment and return its (entry, exit) states."""
    if isinstance(expression, Epsilon):
        start, end = builder.add_states(2)
        builder.add(start, EPS, end)
        return start, end
    if isinstance(expression, Letter):
        start, end = builder.add_states(2)
        builder.add(start, Sym(expression.charset), end)
        return start, end
    if isinstance(expression, VarBind):
        open_state, body_start = builder.add_states(2)
        builder.add(open_state, Open(expression.variable), body_start)
        inner_start, inner_end = _fragment(expression.body, builder, stack_closes)
        builder.add(body_start, EPS, inner_start)
        close_state = builder.add_state()
        close_label: Label = POP if stack_closes else Close(expression.variable)
        builder.add(inner_end, close_label, close_state)
        return open_state, close_state
    if isinstance(expression, Concat):
        first_start, current_end = _fragment(expression.parts[0], builder, stack_closes)
        for part in expression.parts[1:]:
            next_start, next_end = _fragment(part, builder, stack_closes)
            builder.add(current_end, EPS, next_start)
            current_end = next_end
        return first_start, current_end
    if isinstance(expression, Union):
        start, end = builder.add_states(2)
        for option in expression.options:
            inner_start, inner_end = _fragment(option, builder, stack_closes)
            builder.add(start, EPS, inner_start)
            builder.add(inner_end, EPS, end)
        return start, end
    if isinstance(expression, Star):
        start, end = builder.add_states(2)
        inner_start, inner_end = _fragment(expression.body, builder, stack_closes)
        builder.add(start, EPS, end)
        builder.add(start, EPS, inner_start)
        builder.add(inner_end, EPS, inner_start)
        builder.add(inner_end, EPS, end)
        return start, end
    raise SpannerError(f"unknown RGX node {expression!r}")
