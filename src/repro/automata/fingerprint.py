"""Structural fingerprints of variable-set automata.

:func:`va_fingerprint` digests an automaton's *structure* — states,
initial/final, and the canonical transition multiset — so two equal
automata share one digest no matter how (or in which process) they were
built.  The compilation planner keys its plans on this digest, and the
service layer's :class:`~repro.service.cache.SpannerCache` memoises
compiled engines under the digest of the *post-optimisation* automaton,
which is what lets structurally different sources that plan to the same
automaton share one engine.

>>> from repro.spanner import Spanner
>>> first = Spanner.compile(".*x{a+}.*").automaton
>>> second = Spanner.compile(".*x{a+}.*").automaton
>>> first is second
False
>>> va_fingerprint(first) == va_fingerprint(second)
True
"""

from __future__ import annotations

import hashlib

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.va import VA


def canonical_label(label) -> tuple:
    """A hashable, orderable stand-in for a transition label."""
    if isinstance(label, Eps):
        return ("e", "")
    if isinstance(label, Open):
        return ("o", label.variable)
    if isinstance(label, Close):
        return ("c", label.variable)
    assert isinstance(label, Sym)
    return ("s", label.charset.negated, tuple(sorted(label.charset.chars)))


def va_fingerprint(va: VA) -> str:
    """A stable hex digest of an automaton's structure.

    Two automata have equal fingerprints exactly when they have the same
    states, initial/final states, and transition multiset — including
    across processes and pickling round-trips, which is what lets worker
    processes share a cache key with the coordinating process.

    >>> from repro.spanner import Spanner
    >>> va = Spanner.compile("x{a}").automaton
    >>> fingerprint = va_fingerprint(va)
    >>> len(fingerprint), fingerprint == va_fingerprint(va)
    (64, True)
    """
    canonical = (
        va.num_states,
        va.initial,
        va.final,
        tuple(
            sorted(
                (source, canonical_label(label), target)
                for source, label, target in va.transitions
            )
        ),
    )
    return hashlib.sha256(repr(canonical).encode()).hexdigest()
