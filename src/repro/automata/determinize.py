"""Determinisation of variable-set automata (Proposition 6.5).

The classical subset construction, treating variable operations as input
symbols alongside letters.  Two points of care:

* **ε-closures** — the paper's appendix definition allows ε-transitions, so
  subset states are ε-closed;
* **letter predicates** — transitions carry :class:`CharSet` predicates;
  determinism requires the out-predicates of a state to be pairwise
  disjoint, so the construction first refines all predicates into *atoms*
  (the coarsest partition of characters on which every predicate is
  constant) and builds one transition per atom.

Correctness (``⟦A⟧ = ⟦A^det⟧``) holds because a run's validity (each
variable opened/closed at most once, close after open) is a property of
its *label sequence*, and the subset construction preserves exactly the
set of accepted label sequences.
"""

from __future__ import annotations

from repro.alphabet import CharSet
from repro.automata.labels import Close, Eps, Label, Open, Sym
from repro.automata.va import VA
from repro.util.errors import BudgetExceededError


def character_atoms(charsets: list[CharSet]) -> list[CharSet]:
    """The coarsest partition of the character space refining every predicate.

    Each atom is either a finite set of mentioned characters with identical
    membership vectors, or the cofinite "everything unmentioned" class.
    """
    mentioned: set[str] = set()
    for charset in charsets:
        mentioned |= charset.chars
    groups: dict[tuple[bool, ...], set[str]] = {}
    for char in sorted(mentioned):
        vector = tuple(cs.contains(char) for cs in charsets)
        groups.setdefault(vector, set()).add(char)
    atoms = [CharSet.of(chars) for chars in groups.values()]
    if any(cs.negated for cs in charsets):
        atoms.append(CharSet.excluding(mentioned))
    return atoms


def determinize(va: VA, max_states: int | None = None) -> VA:
    """An equivalent deterministic VA via subset construction.

    The result satisfies :func:`repro.automata.va.is_deterministic`; the
    state count is worst-case exponential (benchmark E16 measures the
    blowup on random automata).  ``max_states`` bounds the subset
    exploration, raising :class:`~repro.util.errors.BudgetExceededError`
    instead of exhausting memory — the planner's opt-level-2 pass uses
    this to keep determinisation strictly best-effort.
    """
    atoms = character_atoms(va.charsets())
    operations = sorted(
        {
            label
            for _, label, _ in va.transitions
            if isinstance(label, (Open, Close))
        },
        key=str,
    )

    def closure(states: frozenset[int]) -> frozenset[int]:
        seen = set(states)
        frontier = list(states)
        while frontier:
            state = frontier.pop()
            for label, target in va.out_edges(state):
                if isinstance(label, Eps) and target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def step(states: frozenset[int], symbol: Label) -> frozenset[int]:
        moved: set[int] = set()
        for state in states:
            for label, target in va.out_edges(state):
                if isinstance(symbol, Sym):
                    if isinstance(label, Sym):
                        witness = symbol.charset.witness()
                        if label.charset.contains(witness):
                            moved.add(target)
                elif label == symbol:
                    moved.add(target)
        return closure(frozenset(moved))

    initial = closure(frozenset((va.initial,)))
    subset_index: dict[frozenset[int], int] = {initial: 0}
    transitions: list[tuple[int, Label, int]] = []
    accepting: list[int] = []
    frontier = [initial]
    symbols: list[Label] = [Sym(atom) for atom in atoms] + list(operations)
    while frontier:
        subset = frontier.pop()
        source = subset_index[subset]
        if va.final in subset:
            accepting.append(source)
        for symbol in symbols:
            successor = step(subset, symbol)
            if not successor:
                continue
            if successor not in subset_index:
                if max_states is not None and len(subset_index) >= max_states:
                    raise BudgetExceededError("determinisation subsets", max_states)
                subset_index[successor] = len(subset_index)
                frontier.append(successor)
            transitions.append((source, symbol, subset_index[successor]))
    # The paper's VA have a single final state; determinism forbids gluing
    # accepting subsets with ε-edges, so we mark acceptance by routing
    # through a fresh final state reached on a reserved end-marker...
    # Instead we keep the subset automaton as-is and expose acceptance via
    # multiple finals folded into one when possible.
    if len(accepting) == 1:
        return VA(
            num_states=len(subset_index),
            initial=0,
            final=accepting[0],
            transitions=tuple(transitions),
        )
    # Multiple accepting subsets: the standard remedy without breaking
    # determinism is to duplicate acceptance into a DeterministicVA wrapper;
    # the paper glosses over this, we keep semantics with ε-glue and accept
    # the (harmless for containment algorithms) ε at the very end.
    final = len(subset_index)
    for state in accepting:
        transitions.append((state, Eps(), final))
    return VA(
        num_states=len(subset_index) + 1,
        initial=0,
        final=final,
        transitions=tuple(transitions),
    )


def is_complete_deterministic(va: VA) -> bool:
    """Deterministic and ε-free except possibly final ε-glue edges."""
    from repro.automata.va import is_deterministic

    glue_free = VA(
        num_states=va.num_states,
        initial=va.initial,
        final=va.final,
        transitions=tuple(
            (s, l, t)
            for s, l, t in va.transitions
            if not (isinstance(l, Eps) and t == va.final)
        ),
    )
    return is_deterministic(glue_free)
