"""Path-union construction and state elimination (Theorems 4.3 and 4.4).

The paper converts a variable-stack automaton to an RGX in three steps
(Appendix B, proof of Theorem 4.3; Figure 1 illustrates the middle one):

1. normalise so every variable operation has a dedicated target state;
2. *state elimination*: remove every other state, labelling surviving
   edges with ordinary regular expressions — the result is the paper's
   ``vstk-graph`` whose edges carry a regex prefix plus one variable
   operation (edges into the final state carry no operation);
3. enumerate all consistent initial-to-final walks — each walk uses at
   most ``2k + 1`` operations because a variable can be opened only once —
   and read an RGX off each walk, replacing ``x⊢`` by ``x{`` and ``⊣`` by
   ``}``.  Opens that are never closed are dropped (such opens assign
   nothing).  The union of the walk expressions is the result: a
   potentially exponential union of *functional* RGX formulas.

The same machinery translates hierarchical variable-*set* automata
(Theorem 4.4): named closes must then match the innermost open on each
walk; walks whose operations cannot be nested that way are rejected with
:class:`~repro.util.errors.NotSupportedError` unless the blocking regex
prefixes derive only ``ε`` (in which case adjacent operations commute and
we renest them — the reordering step of [8] used by the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.labels import Close, Eps, Label, Open, Pop, Sym
from repro.automata.va import VA
from repro.automata.vastk import VAStk
from repro.rgx.ast import EPSILON, Letter, Rgx, Star, VarBind, concat, union
from repro.rgx.properties import derives_only_epsilon
from repro.rgx.rewrite import simplify
from repro.util.errors import BudgetExceededError, NotSupportedError

#: Default ceiling on the number of enumerated walks.
DEFAULT_WALK_BUDGET = 100_000


@dataclass
class _Edge:
    source: int
    prefix: Rgx  # variable-free regex consumed before the operation
    op: Label | None  # Open/Close/Pop, or None (edges into the final node)
    target: int


class EliminationGraph:
    """The paper's vstk-graph / vset-graph, built by state elimination."""

    def __init__(self, source_node: int, final_node: int, edges: list[_Edge]) -> None:
        self.source_node = source_node
        self.final_node = final_node
        self.edges = edges
        self.out: dict[int, list[_Edge]] = {}
        for edge in edges:
            self.out.setdefault(edge.source, []).append(edge)

    def op_edge_count(self) -> int:
        return sum(1 for edge in self.edges if edge.op is not None)


def eliminate_states(automaton: "VA | VAStk") -> EliminationGraph:
    """Steps 1 and 2: normalise, then eliminate all plain states."""
    edges: list[_Edge] = []
    next_node = automaton.num_states + 2
    source_node = automaton.num_states  # fresh initial
    final_node = automaton.num_states + 1  # fresh final
    keep: set[int] = {source_node, final_node}

    edges.append(_Edge(source_node, EPSILON, None, automaton.initial))
    edges.append(_Edge(automaton.final, EPSILON, None, final_node))
    for state_source, label, state_target in automaton.transitions:
        if isinstance(label, Eps):
            edges.append(_Edge(state_source, EPSILON, None, state_target))
        elif isinstance(label, Sym):
            edges.append(_Edge(state_source, Letter(label.charset), None, state_target))
        else:
            # Give the operation a dedicated target so surviving edges all
            # carry exactly one operation (the paper's normalisation).
            fresh = next_node
            next_node += 1
            keep.add(fresh)
            edges.append(_Edge(state_source, EPSILON, label, fresh))
            edges.append(_Edge(fresh, EPSILON, None, state_target))

    removable = [
        state for state in range(automaton.num_states) if state not in keep
    ]
    # Heuristic: eliminate low-degree states first to keep regexes small.
    for state in sorted(removable, key=lambda s: _degree(edges, s)):
        edges = _eliminate_one(edges, state)
    return EliminationGraph(source_node, final_node, edges)


def _degree(edges: list[_Edge], state: int) -> int:
    incoming = sum(1 for e in edges if e.target == state and e.source != state)
    outgoing = sum(1 for e in edges if e.source == state and e.target != state)
    return incoming * outgoing


def _eliminate_one(edges: list[_Edge], state: int) -> list[_Edge]:
    incoming = [e for e in edges if e.target == state and e.source != state]
    outgoing = [e for e in edges if e.source == state and e.target != state]
    loops = [e for e in edges if e.source == state and e.target == state]
    remaining = [e for e in edges if state not in (e.source, e.target)]
    # Incoming edges of an eliminable state never carry operations: operation
    # edges point at dedicated kept nodes.
    assert all(e.op is None for e in incoming), "op edge into eliminable state"
    assert all(e.op is None for e in loops), "op self-loop on eliminable state"
    loop_regex: Rgx | None = None
    if loops:
        loop_regex = Star(union(*(e.prefix for e in loops)))
    created: dict[tuple[int, Label | None, int], list[Rgx]] = {}
    for before in incoming:
        for after in outgoing:
            parts = [before.prefix]
            if loop_regex is not None:
                parts.append(loop_regex)
            parts.append(after.prefix)
            prefix = simplify(concat(*parts))
            created.setdefault((before.source, after.op, after.target), []).append(prefix)
    merged = remaining
    for (source, op, target), prefixes in created.items():
        merged.append(_Edge(source, simplify(union(*prefixes)), op, target))
    return _merge_parallel(merged)


def _merge_parallel(edges: list[_Edge]) -> list[_Edge]:
    grouped: dict[tuple[int, Label | None, int], list[Rgx]] = {}
    order: list[tuple[int, Label | None, int]] = []
    for edge in edges:
        key = (edge.source, edge.op, edge.target)
        if key not in grouped:
            order.append(key)
        grouped.setdefault(key, []).append(edge.prefix)
    return [
        _Edge(source, simplify(union(*grouped[(source, op, target)])), op, target)
        for source, op, target in order
    ]


def enumerate_walks(
    graph: EliminationGraph,
    stack_discipline: bool,
    budget: int = DEFAULT_WALK_BUDGET,
) -> list[list[_Edge]]:
    """Step 3's walk enumeration with variable-consistency pruning.

    ``stack_discipline=True`` interprets closes as ``Pop`` (VAstk);
    otherwise closes are named (VA) and only need to target an open
    variable.  Each walk performs at most ``2k`` operations, which bounds
    its length; the number of walks may still be exponential, hence the
    budget.
    """
    walks: list[list[_Edge]] = []
    # Each frame: (node, walk edges, open stack/list of variables, used set)
    initial = (graph.source_node, (), (), frozenset())
    frontier: list[tuple[int, tuple[_Edge, ...], tuple[str, ...], frozenset[str]]] = [
        initial
    ]
    while frontier:
        node, walk, open_vars, used = frontier.pop()
        for edge in graph.out.get(node, ()):
            if edge.op is None:
                if edge.target == graph.final_node:
                    walks.append(list(walk) + [edge])
                    if len(walks) > budget:
                        raise BudgetExceededError(
                            "path-union walk enumeration", budget
                        )
                continue
            if isinstance(edge.op, Open):
                variable = edge.op.variable
                if variable in used:
                    continue
                frontier.append(
                    (
                        edge.target,
                        walk + (edge,),
                        open_vars + (variable,),
                        used | {variable},
                    )
                )
            elif isinstance(edge.op, Pop):
                if not open_vars:
                    continue
                frontier.append(
                    (edge.target, walk + (edge,), open_vars[:-1], used)
                )
            else:
                assert isinstance(edge.op, Close)
                variable = edge.op.variable
                if variable not in open_vars:
                    continue
                if stack_discipline and open_vars[-1] != variable:
                    continue
                remaining = tuple(v for v in open_vars if v != variable)
                frontier.append((edge.target, walk + (edge,), remaining, used))
    return walks


def walk_to_rgx(walk: list[_Edge], renest: bool = True) -> Rgx:
    """Turn one consistent walk into an RGX (``x⊢ ↦ x{``, close ↦ ``}``).

    For variable-set walks whose named closes are not innermost-first, the
    operations are renested when the separating prefixes derive only ``ε``
    (they then happen at the same document position and commute); otherwise
    :class:`NotSupportedError` is raised — such a path can produce
    non-hierarchical mappings, which no RGX can express (Theorem 4.6).
    """
    items = [(edge.prefix, edge.op) for edge in walk]
    if renest:
        items = _renest(items)
    # frames: stack of (variable, collected parts); root frame has variable None.
    frames: list[tuple[str | None, list[Rgx]]] = [(None, [])]
    open_order: list[str] = []
    for prefix, op in items:
        frames[-1][1].append(prefix)
        if op is None:
            continue
        if isinstance(op, Open):
            frames.append((op.variable, []))
            open_order.append(op.variable)
        else:
            close_variable = (
                frames[-1][0] if isinstance(op, Pop) else op.variable
            )
            if frames[-1][0] != close_variable:
                raise NotSupportedError(
                    f"cannot nest close of {close_variable!r} under open of "
                    f"{frames[-1][0]!r}; the path is not hierarchical"
                )
            variable, parts = frames.pop()
            open_order.remove(variable)
            frames[-1][1].append(VarBind(variable, concat(*parts) if parts else EPSILON))
    # Drop opens that were never closed: splice their bodies into the parent.
    while len(frames) > 1:
        _, parts = frames.pop()
        frames[-1][1].extend(parts)
    parts = frames[0][1]
    return simplify(concat(*parts) if parts else EPSILON)


def _renest(
    items: list[tuple[Rgx, Label | None]]
) -> list[tuple[Rgx, Label | None]]:
    """Reorder commuting adjacent operations to make closes innermost-first.

    Two consecutive operations commute when the regex prefix between them
    derives only ``ε`` — they then necessarily happen at the same document
    position.  We greedily bubble closes leftwards over opens they must
    precede.  This implements the reordering step of [8] for the common
    cases; walks needing more global reasoning are rejected later.
    """
    changed = True
    rounds = 0
    limit = max(4, len(items) * len(items))
    while changed:
        rounds += 1
        if rounds > limit:
            raise NotSupportedError(
                "operation renesting did not converge; the automaton is "
                "not hierarchical along this path"
            )
        changed = False
        stack: list[str] = []
        for position, (prefix, op) in enumerate(items):
            if op is None:
                continue
            if isinstance(op, Open):
                stack.append(op.variable)
                continue
            if isinstance(op, Pop):
                if stack:
                    stack.pop()
                continue
            assert isinstance(op, Close)
            if not stack:
                continue
            if stack[-1] == op.variable:
                stack.pop()
                continue
            # Mis-nested close: swap it before the previous operation when
            # the separating prefix derives only ε (same document position,
            # so the two operations commute).
            if position > 0 and derives_only_epsilon(prefix):
                previous_prefix, previous_op = items[position - 1]
                items[position - 1] = (previous_prefix, op)
                items[position] = (prefix, previous_op)
                changed = True
                break
            # Otherwise try to reorder the *opens*: moving the blocking
            # open (the current stack top) one step earlier also fixes the
            # nesting when the two opens happen at the same position.
            blocking = stack[-1]
            open_position = _open_index(items, blocking, position)
            if (
                open_position is not None
                and open_position > 0
                and derives_only_epsilon(items[open_position][0])
            ):
                previous_prefix, previous_op = items[open_position - 1]
                items[open_position - 1] = (
                    previous_prefix,
                    items[open_position][1],
                )
                items[open_position] = (items[open_position][0], previous_op)
                changed = True
                break
            raise NotSupportedError(
                f"operations around {op} cannot be renested; the automaton "
                "is not hierarchical along this path"
            )
    return items


def _open_index(
    items: list[tuple[Rgx, Label | None]], variable: str, before: int
) -> int | None:
    for index in range(before - 1, -1, -1):
        op = items[index][1]
        if isinstance(op, Open) and op.variable == variable:
            return index
    return None


def vastk_to_rgx(
    automaton: VAStk, budget: int = DEFAULT_WALK_BUDGET
) -> Rgx | None:
    """Theorem 4.3: every VAstk has an equivalent RGX.

    Returns ``None`` when the automaton's language is empty (the paper's
    "empty union" case — RGX has no ``∅``).
    """
    graph = eliminate_states(automaton)
    walks = enumerate_walks(graph, stack_discipline=True, budget=budget)
    expressions = [walk_to_rgx(walk) for walk in walks]
    if not expressions:
        return None
    return simplify(union(*_dedupe(expressions)))


def va_to_rgx(automaton: VA, budget: int = DEFAULT_WALK_BUDGET) -> Rgx | None:
    """Theorem 4.4: every *hierarchical* VA has an equivalent RGX.

    Raises :class:`NotSupportedError` when a walk's operations cannot be
    nested (which certifies a non-hierarchical path).
    """
    graph = eliminate_states(automaton)
    walks = enumerate_walks(graph, stack_discipline=False, budget=budget)
    expressions = [walk_to_rgx(walk) for walk in walks]
    if not expressions:
        return None
    return simplify(union(*_dedupe(expressions)))


def _dedupe(expressions: list[Rgx]) -> list[Rgx]:
    seen: set[Rgx] = set()
    unique: list[Rgx] = []
    for expression in expressions:
        if expression not in seen:
            seen.add(expression)
            unique.append(expression)
    return unique
