"""Variable-stack automata (VAstk) — paper, Appendix A.

A VAstk behaves like a VA except that closing is the unnamed ``⊣`` (POP):
variables are opened onto a stack and closed in LIFO order, which is what
forces the produced mappings to be hierarchical (as RGX's are).  A run may
leave variables on the stack at acceptance — those variables are unused and
the mapping is undefined on them (the paper's relaxation of [8]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alphabet import representative_alphabet
from repro.automata.labels import Close, Eps, Label, Open, Pop, Sym
from repro.spans.document import Document, as_text
from repro.spans.mapping import Mapping, Variable
from repro.spans.span import Span
from repro.util.errors import AutomatonError

Transition = tuple[int, Label, int]


@dataclass(frozen=True)
class VAStk:
    """An immutable variable-stack automaton."""

    num_states: int
    initial: int
    final: int
    transitions: tuple[Transition, ...]
    _out: tuple[tuple[tuple[Label, int], ...], ...] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not 0 <= self.initial < self.num_states:
            raise AutomatonError(f"initial state {self.initial} out of range")
        if not 0 <= self.final < self.num_states:
            raise AutomatonError(f"final state {self.final} out of range")
        for source, label, target in self.transitions:
            if not (0 <= source < self.num_states and 0 <= target < self.num_states):
                raise AutomatonError(
                    f"transition ({source}, {label}, {target}) out of range"
                )
            if isinstance(label, Close):
                raise AutomatonError(
                    "VAstk uses the unnamed POP close, not Close(x)"
                )
            if not isinstance(label, (Eps, Sym, Open, Pop)):
                raise AutomatonError(f"VAstk does not accept label {label!r}")
        out: list[list[tuple[Label, int]]] = [[] for _ in range(self.num_states)]
        for source, label, target in self.transitions:
            out[source].append((label, target))
        object.__setattr__(self, "_out", tuple(tuple(edges) for edges in out))

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(
            label.variable
            for _, label, _ in self.transitions
            if isinstance(label, Open)
        )

    def out_edges(self, state: int) -> tuple[tuple[Label, int], ...]:
        return self._out[state]

    def size(self) -> int:
        return self.num_states + len(self.transitions)

    def letter_alphabet(self) -> list[str]:
        return representative_alphabet(
            label.charset
            for _, label, _ in self.transitions
            if isinstance(label, Sym)
        )

    # -- semantics ----------------------------------------------------------------

    def evaluate(self, document: "Document | str") -> set[Mapping]:
        """``⟦A⟧_d`` — all mappings of accepting runs (Appendix A).

        Configurations are ``(state, position, stack, closed)`` where the
        stack holds ``(variable, open position)`` pairs and ``closed`` the
        finished assignments.  The search is a plain reachability over
        configurations — exact but exponential; the efficient evaluators
        live in :mod:`repro.evaluation`.
        """
        text = as_text(document)
        end = len(text) + 1
        initial = (self.initial, 1, (), frozenset())
        seen = {initial}
        frontier = [initial]
        results: set[Mapping] = set()
        while frontier:
            state, pos, stack, closed = frontier.pop()
            if state == self.final and pos == end:
                # Variables still on the stack are unused.
                results.add(Mapping(dict(closed)))
            used = {entry[0] for entry in stack} | {entry[0] for entry in closed}
            for label, target in self._out[state]:
                if isinstance(label, Eps):
                    nxt = (target, pos, stack, closed)
                elif isinstance(label, Sym):
                    if pos >= end or not label.charset.contains(text[pos - 1]):
                        continue
                    nxt = (target, pos + 1, stack, closed)
                elif isinstance(label, Open):
                    if label.variable in used:
                        continue
                    nxt = (target, pos, stack + ((label.variable, pos),), closed)
                else:  # Pop
                    if not stack:
                        continue
                    variable, open_pos = stack[-1]
                    assignment = (variable, Span(open_pos, pos))
                    nxt = (target, pos, stack[:-1], closed | {assignment})
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return results

    def to_va(self) -> "object":
        """An equivalent VA with *named* closes.

        The VA simulates the stack in its state: product states are
        ``(q, stack of variables)``.  Worst case factorial in the number of
        variables — used by tests and small translations only.
        """
        from repro.automata.va import VA

        states: dict[tuple[int, tuple[Variable, ...]], int] = {}
        transitions: list[tuple[int, Label, int]] = []

        def state_of(key: tuple[int, tuple[Variable, ...]]) -> int:
            if key not in states:
                states[key] = len(states)
            return states[key]

        initial_key = (self.initial, ())
        frontier = [initial_key]
        state_of(initial_key)
        explored: set[tuple[int, tuple[Variable, ...]]] = {initial_key}
        accepting: list[int] = []
        while frontier:
            key = frontier.pop()
            state, stack = key
            source = state_of(key)
            if state == self.final:
                accepting.append(source)
            for label, target in self._out[state]:
                if isinstance(label, Open):
                    if label.variable in stack:
                        # No valid run re-opens an open variable, and keeping
                        # such stacks would make the state space unbounded.
                        continue
                    next_key = (target, stack + (label.variable,))
                    out_label: Label = label
                elif isinstance(label, Pop):
                    if not stack:
                        continue
                    next_key = (target, stack[:-1])
                    out_label = Close(stack[-1])
                else:
                    next_key = (target, stack)
                    out_label = label
                if next_key not in explored:
                    explored.add(next_key)
                    frontier.append(next_key)
                transitions.append((source, out_label, state_of(next_key)))
        final = len(states)
        num_states = len(states) + 1
        for state in accepting:
            transitions.append((state, Eps(), final))
        return VA(num_states, state_of(initial_key), final, tuple(transitions))
