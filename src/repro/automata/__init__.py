"""Variable automata: VA, VAstk, translations, algebra (paper §3.2, §4.2)."""

from repro.automata.algebra import join_va, project_va, union_va
from repro.automata.determinize import character_atoms, determinize, is_complete_deterministic
from repro.automata.labels import EPS, POP, Close, Eps, Label, Open, Pop, Sym, any_sym, sym
from repro.automata.path_union import va_to_rgx, vastk_to_rgx
from repro.automata.sequential import is_sequential, make_sequential
from repro.automata.simulate import accepts_string, evaluate_va
from repro.automata.thompson import to_va, to_vastk
from repro.automata.va import VA, VABuilder, is_deterministic
from repro.automata.vastk import VAStk

__all__ = [
    "EPS",
    "POP",
    "Close",
    "Eps",
    "Label",
    "Open",
    "Pop",
    "Sym",
    "VA",
    "VABuilder",
    "VAStk",
    "accepts_string",
    "any_sym",
    "character_atoms",
    "determinize",
    "evaluate_va",
    "is_complete_deterministic",
    "is_deterministic",
    "is_sequential",
    "join_va",
    "make_sequential",
    "project_va",
    "sym",
    "to_va",
    "to_vastk",
    "union_va",
    "va_to_rgx",
    "vastk_to_rgx",
]
