"""Run-level simulation of variable-set automata.

:func:`evaluate_va` computes ``⟦A⟧_d`` exactly, by reachability over run
configurations.  A configuration is ``(state, position, variable statuses)``
where a status records whether each variable is fresh, open (and where it
was opened), or closed (with its span).  Because the status carries every
position the mapping needs, the *set* of output mappings can be read off
the reachable accepting configurations — no path bookkeeping is required.

Two ingredients keep this practical:

* **feasibility pruning** — a memoised check that asks whether the final
  state is reachable from an abstracted configuration ``(state, position,
  status kinds)``, where kinds forget positions; configurations that cannot
  accept are never expanded;
* **deduplication for free** — distinct runs reaching the same accepting
  configuration contribute one mapping.

The worst case is necessarily exponential (the output itself can be
exponential, and Theorem 5.2 shows even emptiness is NP-hard); the
polynomial-delay machinery for the sequential fragment lives in
:mod:`repro.evaluation`.
"""

from __future__ import annotations

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.va import VA
from repro.spans.document import Document, as_text
from repro.spans.mapping import Mapping, Variable
from repro.spans.span import Span

# Status kinds used by the feasibility abstraction.
_FRESH = 0
_OPEN = 1
_DONE = 2


class _Feasibility:
    """Memoised "can this abstract configuration still accept?" oracle.

    Abstract configurations are ``(state, position, kinds)`` with kinds a
    tuple over the automaton's variables in sorted order.  Computed by
    depth-first search with an explicit stack; cycles are broken by
    treating in-progress entries as not-yet-feasible (standard least
    fixpoint for reachability).
    """

    def __init__(self, va: VA, text: str, variables: tuple[Variable, ...]) -> None:
        self._va = va
        self._text = text
        self._end = len(text) + 1
        self._variables = variables
        self._index = {variable: i for i, variable in enumerate(variables)}
        self._cache: dict[tuple[int, int, tuple[int, ...]], bool] = {}

    def feasible(self, state: int, pos: int, kinds: tuple[int, ...]) -> bool:
        key = (state, pos, kinds)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        # Iterative DFS computing reachability of the accepting configuration.
        visiting: set[tuple[int, int, tuple[int, ...]]] = set()
        order: list[tuple[int, int, tuple[int, ...]]] = []

        def explore(start: tuple[int, int, tuple[int, ...]]) -> bool:
            stack = [start]
            while stack:
                current = stack.pop()
                if current in self._cache or current in visiting:
                    continue
                visiting.add(current)
                order.append(current)
                for successor in self._successors(current):
                    if self._cache.get(successor):
                        continue
                    if successor not in visiting:
                        stack.append(successor)
            # Propagate acceptance backwards until a fixpoint is reached.
            changed = True
            results = {conf: self._accepts(conf) for conf in order}
            while changed:
                changed = False
                for conf in order:
                    if results[conf]:
                        continue
                    for successor in self._successors(conf):
                        if results.get(successor) or self._cache.get(successor):
                            results[conf] = True
                            changed = True
                            break
            for conf, value in results.items():
                self._cache[conf] = value
            return results[start]

        result = explore(key)
        return result

    def _accepts(self, conf: tuple[int, int, tuple[int, ...]]) -> bool:
        state, pos, _ = conf
        return state == self._va.final and pos == self._end

    def _successors(self, conf: tuple[int, int, tuple[int, ...]]):
        state, pos, kinds = conf
        for label, target in self._va.out_edges(state):
            if isinstance(label, Eps):
                yield (target, pos, kinds)
            elif isinstance(label, Sym):
                if pos < self._end and label.charset.contains(self._text[pos - 1]):
                    yield (target, pos + 1, kinds)
            elif isinstance(label, Open):
                i = self._index[label.variable]
                if kinds[i] == _FRESH:
                    updated = kinds[:i] + (_OPEN,) + kinds[i + 1 :]
                    yield (target, pos, updated)
            elif isinstance(label, Close):
                i = self._index.get(label.variable)
                if i is not None and kinds[i] == _OPEN:
                    updated = kinds[:i] + (_DONE,) + kinds[i + 1 :]
                    yield (target, pos, updated)


def evaluate_va(va: VA, document: "Document | str", prune: bool = True) -> set[Mapping]:
    """``⟦A⟧_d`` — the set of mappings of all accepting runs.

    ``prune=False`` disables feasibility pruning (used by the evaluator
    ablation benchmark A1 to quantify what the pruning buys).
    """
    text = as_text(document)
    end = len(text) + 1
    variables = tuple(sorted(va.mentioned_variables))
    index = {variable: i for i, variable in enumerate(variables)}
    oracle = _Feasibility(va, text, variables) if prune else None

    # A status is a tuple over `variables`: None (fresh), int (open position)
    # or a Span (closed).
    initial_status: tuple = (None,) * len(variables)
    start = (va.initial, 1, initial_status)
    if oracle is not None and not oracle.feasible(
        va.initial, 1, _kinds_of(initial_status)
    ):
        return set()
    seen = {start}
    frontier = [start]
    results: set[Mapping] = set()
    while frontier:
        state, pos, status = frontier.pop()
        if state == va.final and pos == end:
            results.add(_mapping_of(variables, status))
        for label, target in va.out_edges(state):
            if isinstance(label, Eps):
                nxt = (target, pos, status)
            elif isinstance(label, Sym):
                if pos >= end or not label.charset.contains(text[pos - 1]):
                    continue
                nxt = (target, pos + 1, status)
            elif isinstance(label, Open):
                i = index[label.variable]
                if status[i] is not None:
                    continue
                nxt = (target, pos, status[:i] + (pos,) + status[i + 1 :])
            else:
                assert isinstance(label, Close)
                i = index[label.variable]
                if not isinstance(status[i], int):
                    continue
                span = Span(status[i], pos)
                nxt = (target, pos, status[:i] + (span,) + status[i + 1 :])
            if nxt in seen:
                continue
            if oracle is not None and not oracle.feasible(
                nxt[0], nxt[1], _kinds_of(nxt[2])
            ):
                continue
            seen.add(nxt)
            frontier.append(nxt)
    return results


def _kinds_of(status: tuple) -> tuple[int, ...]:
    kinds = []
    for entry in status:
        if entry is None:
            kinds.append(_FRESH)
        elif isinstance(entry, int):
            kinds.append(_OPEN)
        else:
            kinds.append(_DONE)
    return tuple(kinds)


def _mapping_of(variables: tuple[Variable, ...], status: tuple) -> Mapping:
    # Open-but-never-closed variables are unused: leave them undefined.
    return Mapping(
        {
            variable: entry
            for variable, entry in zip(variables, status)
            if isinstance(entry, Span)
        }
    )


def accepts_string(va: VA, document: "Document | str") -> bool:
    """Does the automaton accept the document at all (``⟦A⟧_d ≠ ∅``)?

    Cheaper than :func:`evaluate_va` when only emptiness is needed; see
    :mod:`repro.evaluation.nonemptiness` for the decision-problem wrapper.
    """
    text = as_text(document)
    variables = tuple(sorted(va.mentioned_variables))
    oracle = _Feasibility(va, text, variables)
    return oracle.feasible(va.initial, 1, (_FRESH,) * len(variables))
