"""Variable-set automata (VA) — paper, Section 3.2 and Appendix A.

A VA is a tuple ``(Q, q0, qf, δ)`` whose transitions carry letters,
ε-moves, or variable operations ``x⊢`` / ``⊣x``.  A *run* over a document
moves one position per letter; variable operations happen between
positions, each variable is opened at most once and closed at most once
(and only while open).  A variable that is opened but never closed is
simply *unused* — the run's mapping leaves it undefined.  This is exactly
how the paper generalises [8] to mappings.

States are integers ``0 .. num_states - 1``; use :class:`VABuilder` for
incremental construction (the hardness reductions build automata this way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alphabet import CharSet, representative_alphabet
from repro.automata.labels import EPS, Close, Eps, Label, Open, Sym
from repro.spans.mapping import Variable
from repro.util.errors import AutomatonError

Transition = tuple[int, Label, int]


@dataclass(frozen=True)
class VA:
    """An immutable variable-set automaton.

    >>> from repro.automata import VABuilder
    >>> from repro.automata.labels import sym, Open, Close
    >>> b = VABuilder()
    >>> q0, q1, q2, q3 = b.add_states(4)
    >>> b.add(q0, Open("x"), q1)
    >>> b.add(q1, sym("a"), q2)
    >>> b.add(q2, Close("x"), q3)
    >>> va = b.build(initial=q0, final=q3)
    >>> sorted(va.variables)
    ['x']
    """

    num_states: int
    initial: int
    final: int
    transitions: tuple[Transition, ...]
    _out: tuple[tuple[tuple[Label, int], ...], ...] = field(
        init=False, repr=False, compare=False, hash=False, default=None  # type: ignore[assignment]
    )

    def __post_init__(self) -> None:
        if not 0 <= self.initial < self.num_states:
            raise AutomatonError(f"initial state {self.initial} out of range")
        if not 0 <= self.final < self.num_states:
            raise AutomatonError(f"final state {self.final} out of range")
        for source, label, target in self.transitions:
            if not (0 <= source < self.num_states and 0 <= target < self.num_states):
                raise AutomatonError(
                    f"transition ({source}, {label}, {target}) out of range"
                )
            if not isinstance(label, (Eps, Sym, Open, Close)):
                raise AutomatonError(f"VA does not accept label {label!r}")
        out: list[list[tuple[Label, int]]] = [[] for _ in range(self.num_states)]
        for source, label, target in self.transitions:
            out[source].append((label, target))
        object.__setattr__(self, "_out", tuple(tuple(edges) for edges in out))

    # -- inspection ------------------------------------------------------------

    @property
    def variables(self) -> frozenset[Variable]:
        """``var(A)`` — variables with an ``Open`` transition (paper, §3.2)."""
        return frozenset(
            label.variable
            for _, label, _ in self.transitions
            if isinstance(label, Open)
        )

    @property
    def mentioned_variables(self) -> frozenset[Variable]:
        """Variables appearing in any operation (opened *or* closed)."""
        return frozenset(
            label.variable
            for _, label, _ in self.transitions
            if isinstance(label, (Open, Close))
        )

    def out_edges(self, state: int) -> tuple[tuple[Label, int], ...]:
        """Outgoing ``(label, target)`` pairs of a state."""
        return self._out[state]

    def charsets(self) -> list[CharSet]:
        """All letter predicates on transitions."""
        return [
            label.charset
            for _, label, _ in self.transitions
            if isinstance(label, Sym)
        ]

    def letter_alphabet(self) -> list[str]:
        """Representative letters for enumeration-style algorithms."""
        return representative_alphabet(self.charsets())

    def size(self) -> int:
        """States plus transitions — the |A| of complexity statements."""
        return self.num_states + len(self.transitions)

    # -- simple rewrites ----------------------------------------------------------

    def renumbered(self, offset: int, num_states: int | None = None) -> "VA":
        """A copy with all states shifted by ``offset`` (for disjoint unions)."""
        total = self.num_states + offset if num_states is None else num_states
        return VA(
            num_states=total,
            initial=self.initial + offset,
            final=self.final + offset,
            transitions=tuple(
                (source + offset, label, target + offset)
                for source, label, target in self.transitions
            ),
        )

    def rename_variables(self, renaming: dict[Variable, Variable]) -> "VA":
        """A copy with variables renamed (identity where unmentioned)."""

        def rename(label: Label) -> Label:
            if isinstance(label, Open):
                return Open(renaming.get(label.variable, label.variable))
            if isinstance(label, Close):
                return Close(renaming.get(label.variable, label.variable))
            return label

        return VA(
            num_states=self.num_states,
            initial=self.initial,
            final=self.final,
            transitions=tuple(
                (source, rename(label), target)
                for source, label, target in self.transitions
            ),
        )

    def trimmed(self) -> "VA":
        """Remove states not on any path from the initial to the final state."""
        forward = _closure(self, self.initial, forward=True)
        backward = _closure(self, self.final, forward=False)
        alive = sorted(forward & backward)
        if not alive:
            # Keep a two-state automaton with no transitions (empty language).
            return VA(2, 0, 1, ())
        if self.initial == self.final:
            alive = sorted(set(alive) | {self.initial})
        index = {state: i for i, state in enumerate(alive)}
        kept = tuple(
            (index[source], label, index[target])
            for source, label, target in self.transitions
            if source in index and target in index
        )
        return VA(len(alive), index[self.initial], index[self.final], kept)

    def describe(self) -> str:
        """A human-readable multi-line description (debugging aid)."""
        lines = [
            f"VA with {self.num_states} states, initial {self.initial}, "
            f"final {self.final}, variables {sorted(self.variables)}"
        ]
        for source, label, target in self.transitions:
            lines.append(f"  {source} --{label}--> {target}")
        return "\n".join(lines)


def _closure(va: VA, start: int, forward: bool) -> set[int]:
    adjacency: dict[int, list[int]] = {}
    for source, _, target in va.transitions:
        if forward:
            adjacency.setdefault(source, []).append(target)
        else:
            adjacency.setdefault(target, []).append(source)
    seen = {start}
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for nxt in adjacency.get(state, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


class VABuilder:
    """Mutable builder for :class:`VA` (and :class:`~repro.automata.vastk.VAStk`).

    >>> b = VABuilder()
    >>> s, t = b.add_states(2)
    >>> b.add(s, EPS, t)
    >>> b.build(initial=s, final=t).num_states
    2
    """

    def __init__(self) -> None:
        self._count = 0
        self._transitions: list[Transition] = []

    def add_state(self) -> int:
        state = self._count
        self._count += 1
        return state

    def add_states(self, how_many: int) -> list[int]:
        return [self.add_state() for _ in range(how_many)]

    def add(self, source: int, label: Label, target: int) -> None:
        self._transitions.append((source, label, target))

    def add_word(self, source: int, word: str, target: int) -> None:
        """A chain of letter transitions spelling ``word``."""
        current = source
        for i, letter in enumerate(word):
            nxt = target if i == len(word) - 1 else self.add_state()
            self.add(current, Sym(CharSet.single(letter)), nxt)
            current = nxt
        if not word:
            self.add(source, EPS, target)

    def add_gadget(self, source: int, variable: Variable, target: int) -> None:
        """Open and immediately close ``variable`` (Theorem 6.6's gadget)."""
        middle = self.add_state()
        self.add(source, Open(variable), middle)
        self.add(middle, Close(variable), target)

    @property
    def num_states(self) -> int:
        return self._count

    def build(self, initial: int, final: int) -> VA:
        return VA(
            num_states=max(self._count, initial + 1, final + 1),
            initial=initial,
            final=final,
            transitions=tuple(self._transitions),
        )

    def build_vastk(self, initial: int, final: int):
        """Build a variable-stack automaton instead (labels may use ``POP``)."""
        from repro.automata.vastk import VAStk

        return VAStk(
            num_states=max(self._count, initial + 1, final + 1),
            initial=initial,
            final=final,
            transitions=tuple(self._transitions),
        )


def is_deterministic(va: VA) -> bool:
    """Section 6's determinism: at most one successor per state and symbol.

    For letter transitions the symbols are character predicates; we require
    that predicates on distinct out-edges of a state are pairwise disjoint
    (so no character admits two successors), and that ε-transitions are
    absent — an ε-move would make the machine's configuration relation
    non-functional.
    """
    for state in range(va.num_states):
        ops_seen: set[Label] = set()
        charsets: list[CharSet] = []
        for label, _ in va.out_edges(state):
            if isinstance(label, Eps):
                return False
            if isinstance(label, (Open, Close)):
                if label in ops_seen:
                    return False
                ops_seen.add(label)
            else:
                assert isinstance(label, Sym)
                for previous in charsets:
                    if previous.intersect(label.charset) is not None:
                        return False
                charsets.append(label.charset)
    return True
