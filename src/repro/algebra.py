"""Algebra query expressions: ∪ / π / ⋈ over any spanner formalism.

The paper's Theorem 4.5 closes VA under union, projection and join of
*mappings*; :mod:`repro.automata.algebra` implements the automaton-level
constructions.  This module is the user-facing counterpart: a small,
immutable expression AST whose leaves are anything the compilation
planner accepts — RGX text, a parsed :class:`~repro.rgx.ast.Rgx`, an
extraction :class:`~repro.rules.rule.Rule`, a
:class:`~repro.automata.va.VA`, a :class:`~repro.spanner.Spanner` — plus
:class:`Ref` leaves naming sibling queries of a
:class:`~repro.service.queryset.QuerySet`.

A :class:`QueryExpr` is a planner *source*: ``repro.plan.plan`` (and
therefore ``repro.api.compile``) lowers it through the automaton algebra
and runs the ordinary pass pipeline over the combined automaton.

>>> expression = query("x{a+}b").union(query("y{b+}a")).project(["x"])
>>> str(expression)
"π{x}(('x{a+}b' ∪ 'y{b+}a'))"
>>> sorted(expression.variables())
['x']

The JSON wire form (the server's ``POST /query`` and the CLI's
``--queries`` files) mirrors the AST one-to-one::

    "x{a+}b"                                        an atom (RGX text)
    {"op": "rgx", "pattern": "x{a+}b"}              the same, spelled out
    {"op": "union", "of": [spec, spec, ...]}
    {"op": "join", "of": [spec, spec, ...]}
    {"op": "project", "of": spec, "keep": ["x"]}
    {"op": "ref", "name": "other-query"}

>>> spec = {"op": "project", "of": {"op": "union", "of": ["x{a}", "y{b}"]},
...         "keep": ["x"]}
>>> sorted(query(spec).variables())
['x']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping as AbstractMapping

from repro.util.errors import SpannerError

__all__ = [
    "Atom",
    "JoinExpr",
    "ProjectExpr",
    "QueryExpr",
    "Ref",
    "UnionExpr",
    "query",
    "query_from_spec",
]


class QueryExpr:
    """Base class of algebra query expressions (immutable, hashable).

    Combinators build bigger expressions; the planner front-end
    (:func:`repro.plan.plan`) lowers them to one automaton.
    """

    __slots__ = ()

    # -- combinators -----------------------------------------------------------

    def union(self, other) -> "UnionExpr":
        """``self ∪ other`` (mapping-set union, Theorem 4.5)."""
        return UnionExpr((self, query(other)))

    def join(self, other) -> "JoinExpr":
        """``self ⋈ other`` (the paper's mapping join, Theorem 4.5)."""
        return JoinExpr((self, query(other)))

    def project(self, variables) -> "ProjectExpr":
        """``π_variables(self)`` — restrict every mapping to ``variables``."""
        return ProjectExpr(self, frozenset(variables))

    # -- structure -------------------------------------------------------------

    def children(self) -> tuple["QueryExpr", ...]:
        return ()

    def variables(self) -> frozenset:
        """The output variables the expression can assign (no planning)."""
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """Names of every :class:`Ref` leaf in the expression."""
        names: set[str] = set()
        for child in self.children():
            names |= child.references()
        return frozenset(names)

    def resolve(
        self, bindings: "AbstractMapping[str, QueryExpr]"
    ) -> "QueryExpr":
        """Substitute every :class:`Ref` leaf from ``bindings``.

        Substitution is recursive (a binding may itself contain refs) and
        cycle-checked: ``a -> b -> a`` raises
        :class:`~repro.util.errors.SpannerError` instead of recursing
        forever.
        """
        return self._resolve(bindings, ())

    def _resolve(self, bindings, stack: tuple[str, ...]) -> "QueryExpr":
        return self


def _leaf_variables(source) -> frozenset:
    from repro.automata.va import VA
    from repro.rgx.ast import Rgx
    from repro.rules.rule import Rule

    if isinstance(source, str):
        from repro.rgx.parser import parse

        return frozenset(parse(source).variables())
    if isinstance(source, Rgx):
        return frozenset(source.variables())
    if isinstance(source, Rule):
        return frozenset(source.variables())
    if isinstance(source, VA):
        return frozenset(source.variables)
    variables = getattr(source, "variables", None)
    if variables is not None:
        return frozenset(variables)
    raise SpannerError(
        f"cannot read variables of a {type(source).__name__} query atom"
    )


@dataclass(frozen=True, slots=True)
class Atom(QueryExpr):
    """A leaf: any single-formalism source the planner accepts."""

    source: object

    def variables(self) -> frozenset:
        return _leaf_variables(self.source)

    def __str__(self) -> str:
        if isinstance(self.source, str):
            return repr(self.source)
        return f"<{type(self.source).__name__}>"


@dataclass(frozen=True, slots=True)
class Ref(QueryExpr):
    """A reference to a named sibling query (resolved by the query set)."""

    name: str

    def variables(self) -> frozenset:
        raise SpannerError(
            f"unresolved query reference {self.name!r}; resolve it against "
            f"a query set (or a bindings mapping) before planning"
        )

    def references(self) -> frozenset[str]:
        return frozenset({self.name})

    def _resolve(self, bindings, stack):
        if self.name in stack:
            cycle = " -> ".join((*stack, self.name))
            raise SpannerError(f"cyclic query reference: {cycle}")
        target = bindings.get(self.name)
        if target is None:
            raise SpannerError(
                f"unknown query reference {self.name!r} "
                f"(known: {sorted(bindings) or 'none'})"
            )
        return target._resolve(bindings, (*stack, self.name))

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True, slots=True)
class UnionExpr(QueryExpr):
    """``e1 ∪ e2 ∪ …`` — the union of the parts' mapping sets."""

    parts: tuple[QueryExpr, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise SpannerError("union needs at least two operands")

    def children(self) -> tuple[QueryExpr, ...]:
        return self.parts

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for part in self.parts:
            result |= part.variables()
        return result

    def _resolve(self, bindings, stack):
        return UnionExpr(
            tuple(part._resolve(bindings, stack) for part in self.parts)
        )

    def __str__(self) -> str:
        return "(" + " ∪ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class JoinExpr(QueryExpr):
    """``e1 ⋈ e2 ⋈ …`` — the paper's join, which keeps one-sided
    assignments of shared variables (unlike relational natural join)."""

    parts: tuple[QueryExpr, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise SpannerError("join needs at least two operands")

    def children(self) -> tuple[QueryExpr, ...]:
        return self.parts

    def variables(self) -> frozenset:
        result: frozenset = frozenset()
        for part in self.parts:
            result |= part.variables()
        return result

    def _resolve(self, bindings, stack):
        return JoinExpr(
            tuple(part._resolve(bindings, stack) for part in self.parts)
        )

    def __str__(self) -> str:
        return "(" + " ⋈ ".join(str(part) for part in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class ProjectExpr(QueryExpr):
    """``π_keep(child)`` — mappings restricted to the ``keep`` variables."""

    child: QueryExpr
    keep: frozenset

    def children(self) -> tuple[QueryExpr, ...]:
        return (self.child,)

    def variables(self) -> frozenset:
        return self.child.variables() & self.keep

    def _resolve(self, bindings, stack):
        return ProjectExpr(self.child._resolve(bindings, stack), self.keep)

    def __str__(self) -> str:
        keep = ",".join(sorted(self.keep))
        return f"π{{{keep}}}({self.child})"


def peel_projections(expression: QueryExpr) -> tuple[QueryExpr, frozenset | None]:
    """Strip every top-level projection: ``(core, keep)``.

    ``π_A(π_B(e))`` restricts to ``A ∩ B``, so nested projections fold
    into one edge projection over the unprojected core — which is what
    lets a query set share one compiled core between ``π_x(Q)`` and
    ``π_y(Q)``.  ``keep`` is ``None`` when there was no projection.
    """
    keep: frozenset | None = None
    while isinstance(expression, ProjectExpr):
        keep = expression.keep if keep is None else (keep & expression.keep)
        expression = expression.child
    return expression, keep


def _atom_source(source) -> object:
    """Validate one non-dict leaf source (lazily imported type checks)."""
    from repro.automata.va import VA
    from repro.rgx.ast import Rgx
    from repro.rules.rule import Rule

    if isinstance(source, (str, Rgx, Rule, VA)):
        return source
    # Spanner / CompiledSpanner (and duck-typed equivalents) expose both
    # an automaton and a variables attribute; accept them structurally so
    # this module never has to import the heavy engine stack.
    if hasattr(source, "automaton") and hasattr(source, "variables"):
        return source
    raise SpannerError(
        f"cannot use a {type(source).__name__} as a query atom; expected "
        f"RGX text, an Rgx AST, a Rule, a VA, or a (Compiled)Spanner"
    )


def query(source) -> QueryExpr:
    """Coerce anything query-like into a :class:`QueryExpr`.

    Expressions pass through, dictionaries parse as JSON wire specs (see
    the module docstring), everything else becomes an :class:`Atom`.

    >>> query("x{a}").union("y{b}").variables() == frozenset({"x", "y"})
    True
    """
    if isinstance(source, QueryExpr):
        return source
    if isinstance(source, dict):
        return query_from_spec(source)
    return Atom(_atom_source(source))


def query_from_spec(spec) -> QueryExpr:
    """Parse the JSON wire form of a query expression.

    >>> expression = query_from_spec(
    ...     {"op": "join", "of": ["x{a}.*", {"op": "ref", "name": "base"}]}
    ... )
    >>> sorted(expression.references())
    ['base']
    """
    if isinstance(spec, str):
        if not spec:
            raise SpannerError("query spec string must not be empty")
        return Atom(spec)
    if isinstance(spec, QueryExpr):
        return spec
    if not isinstance(spec, dict):
        raise SpannerError(
            f"query spec must be a string or an object, "
            f"not {type(spec).__name__}"
        )
    op = spec.get("op")
    if op == "rgx":
        pattern = spec.get("pattern")
        if not isinstance(pattern, str) or not pattern:
            raise SpannerError('{"op": "rgx"} needs a "pattern" string')
        return Atom(pattern)
    if op == "ref":
        name = spec.get("name")
        if not isinstance(name, str) or not name:
            raise SpannerError('{"op": "ref"} needs a "name" string')
        return Ref(name)
    if op in ("union", "join"):
        parts = spec.get("of")
        if not isinstance(parts, list) or len(parts) < 2:
            raise SpannerError(
                f'{{"op": "{op}"}} needs an "of" list of at least two specs'
            )
        constructor = UnionExpr if op == "union" else JoinExpr
        return constructor(tuple(query_from_spec(part) for part in parts))
    if op == "project":
        child = spec.get("of")
        keep = spec.get("keep")
        if child is None:
            raise SpannerError('{"op": "project"} needs an "of" spec')
        if not isinstance(keep, list) or not all(
            isinstance(variable, str) for variable in keep
        ):
            raise SpannerError(
                '{"op": "project"} needs a "keep" list of variable names'
            )
        return ProjectExpr(query_from_spec(child), frozenset(keep))
    raise SpannerError(
        f"unknown query op {op!r}; expected one of "
        f"'rgx', 'ref', 'union', 'join', 'project'"
    )
