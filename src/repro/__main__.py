"""``python -m repro`` — see :mod:`repro.cli`."""

import sys

from repro.cli import run

if __name__ == "__main__":
    sys.exit(run())
