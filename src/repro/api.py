"""The public API: one module, five verbs, CLI-consistent parameters.

Everything a user of the library needs goes through here::

    from repro import api

    engine = api.compile(".*Seller: x{[^,]*},.*")        # one query
    for m in engine.extract("Seller: John, ID75"):       # decoded dicts
        ...

    for result in api.evaluate(pattern, corpus, workers=4):   # many documents
        ...

    for m in api.enumerate(pattern, document):           # constant-delay stream
        ...

    queries = api.query({"seller": seller, "buyer": buyer})   # many queries
    results = queries.extract(document)                  # one engine pass

    client = api.connect(host, port)                     # the HTTP server
    client.query(register={"seller": seller}, documents=[...])

Parameter names match the CLI flags one-to-one: ``opt_level``
(``--opt-level``), ``workers`` (``--workers``), ``batch_size``
(``--batch-size``), ``spans`` (``--spans``).

``compile`` and ``query`` accept every supported query form: RGX text, a
parsed :class:`~repro.rgx.ast.Rgx`, an extraction
:class:`~repro.rules.rule.Rule`, a :class:`~repro.automata.va.VA`, a
:class:`~repro.algebra.QueryExpr` built with the
:func:`repro.algebra.query` combinators, or the JSON spec form (a dict).

Deprecation policy: the older scattered entry points —
``repro.Spanner``, ``repro.compile_spanner``,
``repro.engine.compile_spanner``, ``repro.service.cached_spanner`` —
keep working but emit one :class:`DeprecationWarning` naming their
replacement here.  They are shims, not separate code paths: everything
lands on the same planner and engine.  ``import repro.api`` itself is
warning-free under ``-W error::DeprecationWarning``.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.algebra import QueryExpr, query as _query_expr
from repro.engine.compiled import CompiledSpanner
from repro.server.client import ServerClient
from repro.service.cache import cached_spanner
from repro.service.evaluate import CorpusResult, extract_corpus
from repro.service.queryset import QuerySet, QuerySetResult

__all__ = [
    "CompiledSpanner",
    "CorpusResult",
    "QueryExpr",
    "QuerySet",
    "QuerySetResult",
    "ServerClient",
    "compile",
    "connect",
    "enumerate",
    "evaluate",
    "query",
]

_builtin_enumerate = enumerate


def _coerced(source):
    """Dict sources are JSON query specs; everything else passes through."""
    if isinstance(source, dict):
        return _query_expr(source)
    return source


def compile(source, *, opt_level: int | None = None) -> CompiledSpanner:
    """Compile any supported query form into a reusable engine.

    Compiles through the process-wide spanner cache, so compiling the
    same query twice (anywhere in the process) returns the same engine.

    >>> engine = compile("x{a+}b")
    >>> engine.extract("aab")
    [{'x': 'aa'}]
    >>> compile({"op": "union", "of": ["x{a}.*", ".*y{b}"]}).count("ab")
    2
    """
    return cached_spanner(_coerced(source), opt_level)


def evaluate(
    source,
    corpus,
    *,
    opt_level: int | None = None,
    workers: int = 1,
    ordered: bool = True,
    batch_size: int | None = None,
    spans: bool = False,
) -> Iterator[CorpusResult]:
    """Evaluate one query over every document of a corpus.

    ``corpus`` is anything :func:`repro.service.corpus.as_corpus` accepts
    (a list of texts, an ``{id: text}`` mapping, a directory corpus, a
    generator factory).  Results stream back as
    :class:`~repro.service.evaluate.CorpusResult` records with decoded
    mappings; errors are isolated per document.

    >>> [r.mappings for r in evaluate(".*x{a+}.*", ["ba", "bb"])]
    [({'x': 'a'},), ()]
    """
    return extract_corpus(
        compile(source, opt_level=opt_level),
        corpus,
        workers=workers,
        ordered=ordered,
        spans=spans,
        chunk_size=batch_size,
    )


def enumerate(
    source, document, *, opt_level: int | None = None, spans: bool = False
) -> Iterator[dict]:
    """Stream one document's decoded mappings in enumeration order.

    The lazy counterpart of ``compile(source).extract(document)`` —
    backed by the constant-delay enumeration of Theorem 5.2, so the first
    mapping arrives without materialising the output set.

    >>> list(enumerate(".*x{a+}.*", "ba"))
    [{'x': 'a'}]
    """
    engine = compile(source, opt_level=opt_level)
    text = document if isinstance(document, str) else document.text
    for mapping in engine.enumerate(text):
        if spans:
            yield dict(mapping.items())
        else:
            yield {v: s.content(text) for v, s in mapping.items()}


def query(
    queries,
    corpus=None,
    *,
    opt_level: int | None = None,
    workers: int = 1,
    ordered: bool = True,
    batch_size: int | None = None,
    spans: bool = False,
):
    """Build a :class:`~repro.service.queryset.QuerySet`; evaluate if asked.

    ``queries`` maps names to query specs (RGX text, algebra expressions,
    JSON spec dicts — including ``{"op": "ref", "name": ...}`` references
    to sibling queries).  All queries compile into **one** shared engine,
    so each document is scanned once regardless of how many queries are
    registered.

    Without ``corpus``, returns the query set (call ``.extract(text)``
    per document, or ``.evaluate_corpus(...)`` later).  With ``corpus``,
    returns the streaming per-document results directly.

    >>> queries = {"pair": "x{a+}b.*y{b+}",
    ...            "left": {"op": "project", "of": {"op": "ref", "name": "pair"},
    ...                     "keep": ["x"]}}
    >>> query(queries).extract("aabab")["left"]
    [{'x': 'aa'}]
    >>> [r.queries["pair"] for r in query(queries, ["abb"])]
    [[{'x': 'a', 'y': 'b'}]]
    """
    queryset = QuerySet(opt_level=opt_level)
    for name, source in queries.items():
        queryset.register(name, source)
    if corpus is None:
        return queryset
    return queryset.evaluate_corpus(
        corpus,
        workers=workers,
        ordered=ordered,
        batch_size=batch_size,
        spans=spans,
    )


def connect(
    host: str = "127.0.0.1", port: int = 8080, *, timeout: float = 30.0
) -> ServerClient:
    """A client for a running ``repro serve`` instance.

    >>> from repro.server import ServerConfig, ServerThread
    >>> with ServerThread(ServerConfig(port=0)) as server:
    ...     host, port = server.address
    ...     with connect(host, port) as client:
    ...         verdict = client.evaluate("x{a}b", ["ab"])
    >>> verdict["results"][0]["matches"]
    True
    """
    return ServerClient(host, port, timeout=timeout)
