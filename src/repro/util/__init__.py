"""Internal utilities shared across the library."""

from repro.util.errors import (
    AutomatonError,
    BudgetExceededError,
    MappingError,
    NotSupportedError,
    ParseError,
    RuleError,
    SpanError,
    SpannerError,
)
from repro.util.graphs import strongly_connected_components, topological_order

__all__ = [
    "AutomatonError",
    "BudgetExceededError",
    "MappingError",
    "NotSupportedError",
    "ParseError",
    "RuleError",
    "SpanError",
    "SpannerError",
    "strongly_connected_components",
    "topological_order",
]
