"""Exception hierarchy for the spanner library.

Every error raised by the public API derives from :class:`SpannerError` so
that callers can catch library failures with a single ``except`` clause while
still being able to distinguish parse errors from semantic misuse.
"""

from __future__ import annotations


class SpannerError(Exception):
    """Base class for all errors raised by this library."""


class SpanError(SpannerError):
    """An ill-formed span was constructed or used with the wrong document.

    Spans follow the paper's convention: a span of a document ``d`` is a pair
    ``(i, j)`` with ``1 <= i <= j <= |d| + 1``.
    """


class ParseError(SpannerError):
    """The concrete syntax of a variable regex could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class MappingError(SpannerError):
    """A mapping was used inconsistently.

    Raised, for example, when taking the union of two incompatible mappings
    (the paper only defines the union ``mu1 | mu2`` when ``mu1 ~ mu2``).
    """


class AutomatonError(SpannerError):
    """A variable-set automaton was constructed or used incorrectly."""


class RuleError(SpannerError):
    """An extraction rule violates a structural requirement.

    Examples: a non-simple rule passed to an algorithm defined only for simple
    rules, or a rule whose graph is not tree-like passed to the tree-like
    evaluation algorithm of Theorem 5.9.
    """


class NotSupportedError(SpannerError):
    """The requested operation is outside the implemented fragment."""


class CorpusError(SpannerError):
    """A corpus is ill-formed (duplicate document ids, unreadable source).

    Raised by the service layer (:mod:`repro.service`) when a document
    source violates the corpus contract — most commonly two documents
    sharing one id, which would make result attribution ambiguous.
    """


class BudgetExceededError(SpannerError):
    """A worst-case-exponential construction exceeded its size budget.

    Several translations in the paper incur exponential (or doubly
    exponential) blowup; the implementations accept a ``budget`` to abort
    deterministically instead of exhausting memory.
    """

    def __init__(self, message: str, budget: int) -> None:
        super().__init__(f"{message} (budget {budget} exceeded)")
        self.budget = budget
