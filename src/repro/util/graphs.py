"""Graph algorithms used by the rule machinery.

The cycle-elimination procedure of Theorem 4.7 runs Tarjan's strongly
connected components algorithm on the rule graph and then processes the
components in (reverse) topological order.  Implemented from scratch
(iteratively, to avoid recursion limits on long chains).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

Node = TypeVar("Node", bound=Hashable)


def strongly_connected_components(
    graph: Mapping[Node, Iterable[Node]],
) -> list[list[Node]]:
    """Tarjan's SCC algorithm, iterative form.

    ``graph`` maps each node to its successors.  Nodes that appear only as
    successors are treated as having no outgoing edges.  The components are
    returned in *reverse topological order* (a component is emitted only
    after every component it can reach), which is the order Tarjan's
    algorithm naturally produces.
    """
    adjacency: dict[Node, list[Node]] = {}
    for node, successors in graph.items():
        adjacency.setdefault(node, [])
        for succ in successors:
            adjacency[node].append(succ)
            adjacency.setdefault(succ, [])

    index_of: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    components: list[list[Node]] = []
    counter = 0

    for root in adjacency:
        if root in index_of:
            continue
        # Each work item is (node, iterator over remaining successors).
        work: list[tuple[Node, int]] = [(root, 0)]
        while work:
            node, child_pos = work.pop()
            if child_pos == 0:
                index_of[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            recurse = False
            successors = adjacency[node]
            for pos in range(child_pos, len(successors)):
                succ = successors[pos]
                if succ not in index_of:
                    work.append((node, pos + 1))
                    work.append((succ, 0))
                    recurse = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if recurse:
                continue
            if lowlink[node] == index_of[node]:
                component: list[Node] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def topological_order(graph: Mapping[Node, Iterable[Node]]) -> list[Node]:
    """Topological order of a DAG (raises ``ValueError`` on a cycle)."""
    components = strongly_connected_components(graph)
    adjacency = {node: set(succs) for node, succs in graph.items()}
    for component in components:
        if len(component) > 1:
            raise ValueError(f"graph has a cycle through {component!r}")
        node = component[0]
        if node in adjacency.get(node, ()):  # self-loop
            raise ValueError(f"graph has a self-loop at {node!r}")
    # Tarjan emits components in reverse topological order.
    return [component[0] for component in reversed(components)]


def reachable_from(
    graph: Mapping[Node, Iterable[Node]], sources: Sequence[Node]
) -> set[Node]:
    """All nodes reachable from ``sources`` (including the sources)."""
    adjacency: dict[Node, list[Node]] = {}
    for node, successors in graph.items():
        adjacency.setdefault(node, []).extend(successors)
    seen: set[Node] = set()
    frontier = [node for node in sources]
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(adjacency.get(node, ()))
    return seen
