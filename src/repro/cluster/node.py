"""The rack worker node: a stock spanner server plus a membership agent.

A worker node is *exactly* a :class:`~repro.server.app.SpannerServer` —
same endpoints, same dispatcher, same local worker pool — with a
:class:`NodeAgent` daemon thread speaking the cluster control plane at a
coordinator:

* register on startup (and re-register whenever the coordinator answers
  404 — that means it evicted us while we were partitioned);
* heartbeat on the cadence the coordinator dictated, advertising the
  node's warm :class:`~repro.service.cache.SpannerCache` fingerprints
  (the affinity signal) and queue stats (the ``/healthz`` rollup);
* ``/leave`` politely on shutdown.

``repro worker --join URL`` (:func:`run_worker`) is the process entry;
:class:`WorkerNodeThread` is the in-process harness the tests and the
docs quickstart use.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import threading

from repro.cluster.protocol import split_url
from repro.server.app import ServerConfig, ServerThread, SpannerServer
from repro.server.client import ServerClient, ServerResponseError
from repro.service.cache import SpannerCache

__all__ = ["NodeAgent", "WorkerNodeThread", "run_worker"]

#: Fallback beat cadence until the coordinator tells us its own.
_DEFAULT_INTERVAL = 2.0


class NodeAgent(threading.Thread):
    """The membership daemon running beside one server instance.

    All coordinator I/O lives on this thread; the serving path never
    blocks on the control plane.  Connection failures are absorbed (the
    next tick retries), and a 404 on heartbeat flips the agent straight
    back into the registration state with the *same* node id.
    """

    def __init__(
        self,
        server: SpannerServer,
        coordinator_url: str,
        *,
        advertise_url: str | None = None,
        interval: float | None = None,
        connect_retries: int = 3,
    ) -> None:
        super().__init__(name="repro-node-agent", daemon=True)
        self._server = server
        self._coordinator_host, self._coordinator_port = split_url(
            coordinator_url
        )
        self.coordinator_url = coordinator_url
        self._advertise = advertise_url
        self._interval = interval
        self._connect_retries = connect_retries
        self._halt = threading.Event()
        self.registered = threading.Event()
        self.node_id: str | None = None
        self.registrations = 0
        self.heartbeats = 0
        self.errors = 0

    @property
    def advertise_url(self) -> str:
        if self._advertise is not None:
            return self._advertise
        host, port = self._server.address
        return f"http://{host}:{port}"

    def _payload(self) -> dict:
        """What every register/heartbeat advertises about this node."""
        dispatcher = self._server.dispatcher
        stats = dispatcher.stats()
        return {
            "fingerprints": dispatcher.cache.fingerprints(),
            "stats": {
                "pending_documents": stats["pending_documents"],
                "spanners_cached": stats["cache"]["size"],
                "workers": stats["workers"],
            },
        }

    def wait_registered(self, timeout: float = 10.0) -> bool:
        return self.registered.wait(timeout)

    def run(self) -> None:  # pragma: no cover - exercised via harnesses
        client = ServerClient(
            self._coordinator_host,
            self._coordinator_port,
            timeout=10.0,
            retries=self._connect_retries,
        )
        interval = self._interval or _DEFAULT_INTERVAL
        try:
            while not self._halt.is_set():
                try:
                    if not self.registered.is_set():
                        reply = client.post_json(
                            "/register",
                            {
                                "url": self.advertise_url,
                                "node_id": self.node_id,
                                **self._payload(),
                            },
                        )
                        self.node_id = reply["node_id"]
                        if self._interval is None:
                            interval = float(
                                reply.get(
                                    "heartbeat_interval", _DEFAULT_INTERVAL
                                )
                            )
                        self.registrations += 1
                        self.registered.set()
                    else:
                        client.post_json(
                            "/heartbeat",
                            {"node_id": self.node_id, **self._payload()},
                        )
                        self.heartbeats += 1
                except ServerResponseError as error:
                    if error.status in (404, 410):
                        # Evicted while partitioned: re-register now,
                        # keeping the stable id we were assigned.
                        self.registered.clear()
                        continue
                    self.errors += 1
                except (ConnectionError, TimeoutError, OSError):
                    # Coordinator down or restarting; try again next
                    # tick.  If it lost our registration it answers the
                    # next heartbeat with 404 and we fall back here.
                    self.errors += 1
                    client.close()
                self._halt.wait(interval)
            if self.registered.is_set() and self.node_id is not None:
                try:
                    client.post_json("/leave", {"node_id": self.node_id})
                except (ServerResponseError, ConnectionError, OSError):
                    pass  # the reaper will notice soon enough
        finally:
            client.close()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop beating, say ``/leave``, and join the thread."""
        self._halt.set()
        self.join(timeout=timeout)


# -- entry points ---------------------------------------------------------------


async def _work_until_signalled(
    config: ServerConfig, join_url: str, advertise_url: str | None
) -> None:
    server = SpannerServer(config)
    await server.start()
    host, port = server.address
    agent = NodeAgent(
        server,
        join_url,
        advertise_url=advertise_url or f"http://{host}:{port}",
    )
    agent.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signal_number in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signal_number, stop.set)
            installed.append(signal_number)
        except NotImplementedError:  # non-Unix event loop
            pass
    print(
        f"repro worker: serving http://{host}:{port} "
        f"(workers={config.workers}), joining {join_url}",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for signal_number in installed:
            loop.remove_signal_handler(signal_number)
    print("repro worker: leaving and draining…", file=sys.stderr, flush=True)
    await loop.run_in_executor(None, agent.stop)
    await server.drain()
    print("repro worker: drained, bye", file=sys.stderr, flush=True)


def run_worker(
    config: ServerConfig | None = None,
    join_url: str = "http://127.0.0.1:8080",
    advertise_url: str | None = None,
) -> int:
    """Run a worker node until SIGTERM/SIGINT; the CLI entry."""
    try:
        asyncio.run(
            _work_until_signalled(
                config or ServerConfig(), join_url, advertise_url
            )
        )
    except KeyboardInterrupt:  # loops without add_signal_handler support
        pass
    return 0


class WorkerNodeThread:
    """An in-process worker node: ServerThread + NodeAgent, one context.

    >>> from repro.cluster import CoordinatorConfig, CoordinatorThread
    >>> with CoordinatorThread(CoordinatorConfig(port=0)) as coordinator:
    ...     with WorkerNodeThread(coordinator.url) as node:
    ...         joined = node.agent.wait_registered(timeout=10.0)
    >>> joined
    True
    """

    def __init__(
        self,
        join_url: str,
        config: ServerConfig | None = None,
        cache: SpannerCache | None = None,
        *,
        interval: float | None = None,
    ) -> None:
        self._join_url = join_url
        self._interval = interval
        self._server_thread = ServerThread(
            config if config is not None else ServerConfig(port=0),
            cache=cache,
        )
        self.agent: NodeAgent | None = None

    def __enter__(self) -> "WorkerNodeThread":
        self._server_thread.__enter__()
        host, port = self._server_thread.address
        self.agent = NodeAgent(
            self._server_thread.server,
            self._join_url,
            advertise_url=f"http://{host}:{port}",
            interval=self._interval,
        )
        self.agent.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self._server_thread.address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def server(self) -> SpannerServer:
        return self._server_thread.server

    @property
    def node_id(self) -> str | None:
        return None if self.agent is None else self.agent.node_id

    def __exit__(self, *exc_info) -> None:
        if self.agent is not None:
            self.agent.stop()
        self._server_thread.__exit__(*exc_info)
