"""The cluster coordinator: one front door, many rack worker nodes.

:class:`ClusterCoordinator` is a :class:`~repro.server.app.SpannerServer`
whose dispatcher executes batches on a :class:`ClusterBackend` instead of
a local pool — the executor seam
(:class:`~repro.service.backend.ExecutorBackend`) is exactly what makes
that a constructor argument rather than a fork of the server.  On top of
the five serving endpoints it adds the control plane worker nodes speak
(:mod:`repro.cluster.protocol`):

* ``POST /register`` — a node joins (or rejoins) and learns the
  heartbeat cadence;
* ``POST /heartbeat`` — liveness plus the node's warm engine
  fingerprints and queue stats;
* ``POST /leave`` — clean goodbye.

Scheduling is fingerprint-affine: :meth:`NodeRegistry.acquire` prefers
nodes that advertised the batch's compiled-engine fingerprint, so a
pattern's documents keep landing where its engine is already warm.
Failure handling composes the PR-9 primitives per node — a
:class:`~repro.service.resilience.CircuitBreaker` in each
:class:`~repro.cluster.registry.NodeRecord` plus a
:class:`~repro.service.resilience.RetryPolicy` for backoff:

* a node that stops answering is evicted immediately and its in-flight
  batch **requeued** on the next-best node (``repro_cluster_requeues_total``);
* a node that misses ``heartbeat_timeout`` of beats is reaped by the
  eviction loop (``repro_cluster_evictions_total``);
* when no node remains, batches run **locally** in the coordinator —
  degraded, never failed (``repro_cluster_local_fallback_total``).

``GET /metrics`` aggregates cluster-wide gauges (per-node inflight and
batch counts, pending-document rollups) next to the coordinator's own
serving metrics; ``GET /healthz`` gains the live topology.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import sys
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.cluster.protocol import (
    parse_heartbeat,
    parse_leave,
    parse_register,
)
from repro.cluster.registry import NodeRegistry
from repro.cluster.remote import (
    NodeClient,
    RemoteBusy,
    RemoteRejected,
    RemoteUnavailable,
    remote_spec,
)
from repro.server.app import ServerConfig, ServerThread, SpannerServer
from repro.server.metrics import Metrics
from repro.server.protocol import ProtocolError, encode_error
from repro.service.backend import ExecutorBackend, _check_kind
from repro.service.cache import SpannerCache
from repro.service.evaluate import evaluate_records
from repro.service.resilience import RetryPolicy

__all__ = [
    "ClusterBackend",
    "ClusterCoordinator",
    "CoordinatorConfig",
    "CoordinatorThread",
    "coordinate",
]


@dataclass
class CoordinatorConfig(ServerConfig):
    """Everything ``repro coordinate`` exposes as flags (serve flags plus
    the cluster cadence and per-node failure budget)."""

    #: Seconds between node heartbeats (told to nodes at registration).
    heartbeat_interval: float = 2.0
    #: Seconds of silence before a node is reaped (None: 3x interval).
    heartbeat_timeout: float | None = None
    #: Per-request socket timeout talking to a worker node.
    node_timeout: float = 30.0
    #: Requeue budget per batch beyond the first attempt per known node.
    node_retries: int = 2
    #: Concurrent remote batches the coordinator keeps in flight.
    cluster_threads: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout is None:
            self.heartbeat_timeout = 3.0 * self.heartbeat_interval
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed the interval")
        if self.node_timeout <= 0:
            raise ValueError("node_timeout must be positive")
        if self.node_retries < 0:
            raise ValueError("node_retries must be >= 0")
        if self.cluster_threads < 1:
            raise ValueError("cluster_threads must be >= 1")


class ClusterBackend(ExecutorBackend):
    """The executor seam over a :class:`NodeRegistry` of worker nodes.

    Each submitted batch is routed to the least-loaded breaker-admitted
    node (warm-for-this-fingerprint nodes win ties), requeued elsewhere
    when a node dies mid-batch, and run locally in-process when the
    cluster is empty or the batch's engine has no serialisable source.
    The caller-visible contract is byte-identical to local execution.
    """

    name = "cluster"

    def __init__(
        self,
        registry: NodeRegistry,
        metrics: Metrics | None = None,
        retry: RetryPolicy | None = None,
        *,
        timeout: float = 30.0,
        threads: int = 16,
    ) -> None:
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self._registry = registry
        self._metrics = metrics
        self._retry = retry if retry is not None else RetryPolicy(
            max_retries=2, base_delay=0.05, max_delay=0.5
        )
        self._timeout = timeout
        self._threads = threads
        self._lock = threading.Lock()
        self._clients: dict[str, NodeClient] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._closed = False
        self._counters = {
            "remote_batches": 0,
            "local_batches": 0,
            "requeues": 0,
            "warm_hits": 0,
        }

    @property
    def parallelism(self) -> int:
        return self._threads

    def _count(self, key: str, metric: str | None = None) -> None:
        with self._lock:
            self._counters[key] += 1
        if self._metrics is not None and metric is not None:
            self._metrics.inc(metric)

    def _client(self, record) -> NodeClient:
        with self._lock:
            client = self._clients.get(record.node_id)
            if client is None or client.url != record.url:
                if client is not None:
                    client.close()
                client = NodeClient(record.url, timeout=self._timeout)
                self._clients[record.node_id] = client
            return client

    def forget(self, node_id: str) -> None:
        """Drop (and close) the pooled connections to an evicted node."""
        with self._lock:
            client = self._clients.pop(node_id, None)
        if client is not None:
            client.close()

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("cluster backend is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._threads,
                    thread_name_prefix="repro-cluster",
                )
            return self._executor

    def submit(
        self, engine, records, *, kind: str = "mappings", spans: bool = False
    ) -> Future:
        _check_kind(kind)
        return self._pool().submit(self._run, engine, list(records), kind, spans)

    def _run(self, engine, records, kind: str, spans: bool):
        spec = remote_spec(engine)
        if spec is not None:
            triples = self._run_remote(spec, engine, records, kind, spans)
            if triples is not None:
                return triples
        # Degraded-not-failed: no usable node (or a non-serialisable
        # engine) runs the batch right here in the coordinator.
        self._count("local_batches", "repro_cluster_local_fallback_total")
        return evaluate_records(engine, records, kind, spans)

    def _run_remote(self, spec, engine, records, kind, spans):
        """One batch on the best available node, or ``None`` for local."""
        fingerprint = engine.fingerprint
        # The requeue budget scales with the topology: every known node
        # may be tried once, plus the policy's retry allowance for
        # load-shed (429/422) round trips.
        attempts = 0
        budget = len(self._registry) + self._retry.max_retries
        while attempts <= budget:
            leased = self._registry.acquire(fingerprint)
            if leased is None:
                return None
            record, warm = leased
            if warm:
                self._count("warm_hits", "repro_cluster_warm_hits_total")
            client = self._client(record)
            attempts += 1
            try:
                triples = client.evaluate_batch(spec, records, kind, spans)
            except RemoteBusy as error:
                # The node is alive but shedding: back off and rerun the
                # scheduling decision (another node may be free).
                self._registry.release(record.node_id, ok=False)
                if attempts > budget:
                    return None
                time.sleep(
                    min(
                        max(self._retry.backoff(attempts), 0.0),
                        max(error.retry_after, 0.05),
                        0.5,
                    )
                )
                continue
            except RemoteUnavailable:
                # The node went away mid-batch: evict it now (the reaper
                # would take a whole heartbeat timeout to notice) and
                # requeue the batch on the next-best node.
                self._registry.release(record.node_id, ok=False)
                if self._registry.evict(record.node_id) is not None:
                    if self._metrics is not None:
                        self._metrics.inc("repro_cluster_evictions_total")
                self.forget(record.node_id)
                self._count("requeues", "repro_cluster_requeues_total")
                continue
            except RemoteRejected:
                # Deterministic refusal — every node would say the same.
                self._registry.release(record.node_id, ok=False)
                return None
            self._registry.release(record.node_id, ok=True, fingerprint=fingerprint)
            self._count("remote_batches", "repro_cluster_remote_batches_total")
            return triples
        return None

    def stats(self, fingerprint: str | None = None) -> dict:
        with self._lock:
            counters = dict(self._counters)
        counters["backend"] = self.name
        counters["nodes"] = len(self._registry)
        return counters

    def close(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
            clients = list(self._clients.values())
            self._clients.clear()
        if executor is not None:
            executor.shutdown(wait=wait)
        for client in clients:
            client.close()


class ClusterCoordinator(SpannerServer):
    """A spanner server that executes on registered worker nodes."""

    _CLUSTER_ROUTES = ("/register", "/heartbeat", "/leave")

    def __init__(
        self,
        config: CoordinatorConfig | None = None,
        cache: SpannerCache | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        config = config if config is not None else CoordinatorConfig()
        metrics = metrics if metrics is not None else Metrics()
        self.registry = NodeRegistry(
            config.heartbeat_interval, config.heartbeat_timeout
        )
        self.cluster = ClusterBackend(
            self.registry,
            metrics=metrics,
            retry=RetryPolicy(
                max_retries=config.node_retries,
                base_delay=0.05,
                max_delay=0.5,
            ),
            timeout=config.node_timeout,
            threads=config.cluster_threads,
        )
        # The whole trick: the dispatcher executes on the cluster via
        # the injected-backend seam; everything else is the stock server.
        config.backend = self.cluster
        super().__init__(config, cache=cache, metrics=metrics)
        self._evict_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self.publish_cluster_gauges()
        self._evict_task = asyncio.create_task(self._evict_loop())

    async def drain(self) -> None:
        task, self._evict_task = self._evict_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        await super().drain()
        self.cluster.close(wait=False)

    async def _evict_loop(self) -> None:
        period = max(0.05, self.registry.heartbeat_timeout / 3.0)
        while True:
            await asyncio.sleep(period)
            self.reap_stale_nodes()

    def reap_stale_nodes(self) -> list:
        """Evict every node whose heartbeat is overdue; returns them."""
        stale = self.registry.evict_stale()
        for record in stale:
            self.cluster.forget(record.node_id)
            self.metrics.inc("repro_cluster_evictions_total")
        if stale:
            self.publish_cluster_gauges()
        return stale

    # -- metrics / health ------------------------------------------------------

    def publish_cluster_gauges(self) -> None:
        """Refresh the cluster-wide gauges (per-node plus rollups)."""
        nodes = self.registry.nodes()
        self.metrics.gauge("repro_cluster_nodes", len(nodes))
        pending = spanners = inflight = 0
        for record in nodes:
            self.metrics.gauge(
                "repro_cluster_node_inflight",
                record.inflight,
                node=record.node_id,
            )
            self.metrics.gauge(
                "repro_cluster_node_batches",
                record.batches,
                node=record.node_id,
            )
            self.metrics.gauge(
                "repro_cluster_node_failures",
                record.failures,
                node=record.node_id,
            )
            inflight += record.inflight
            pending += int(record.stats.get("pending_documents") or 0)
            spanners += int(record.stats.get("spanners_cached") or 0)
        self.metrics.gauge("repro_cluster_inflight_batches", inflight)
        self.metrics.gauge("repro_cluster_pending_documents", pending)
        self.metrics.gauge("repro_cluster_spanners_cached", spanners)

    def _health_payload(self) -> dict:
        payload = super()._health_payload()
        topology = self.registry.describe()
        payload["nodes"] = len(topology["nodes"])
        # The backend's "nodes" count would clobber the topology list.
        stats = {
            key: value
            for key, value in self.cluster.stats().items()
            if key != "nodes"
        }
        payload["cluster"] = {
            "heartbeat_interval": self.registry.heartbeat_interval,
            "heartbeat_timeout": self.registry.heartbeat_timeout,
            **topology,
            **stats,
        }
        return payload

    # -- control plane ---------------------------------------------------------

    async def _respond(self, writer, method, path, headers, body) -> bool:
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and not self._draining
        )
        if path in self._CLUSTER_ROUTES:
            self.metrics.inc("repro_requests_total", endpoint=path.strip("/"))
            try:
                return await self._cluster_route(
                    writer, method, path, body, keep_alive
                )
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as error:  # same bug-shield as the base router
                self.metrics.inc("repro_errors_total")
                with contextlib.suppress(ConnectionError):
                    await self._write_response(
                        writer,
                        500,
                        encode_error(f"{type(error).__name__}: {error}"),
                        close=True,
                    )
                return False
        if path == "/metrics":
            # Scrapes see up-to-the-second topology: reap before render.
            self.reap_stale_nodes()
            self.publish_cluster_gauges()
        return await super()._respond(writer, method, path, headers, body)

    async def _cluster_route(
        self, writer, method: str, path: str, body: bytes, keep_alive: bool
    ) -> bool:
        if method != "POST":
            await self._write_response(
                writer,
                405,
                encode_error(f"{path} takes POST"),
                close=not keep_alive,
                extra_headers=(("Allow", "POST"),),
            )
            return keep_alive
        try:
            if path == "/register":
                request = parse_register(body)
                record = self.registry.register(
                    request.url,
                    request.fingerprints,
                    request.stats,
                    request.node_id,
                )
                self.metrics.inc("repro_cluster_registrations_total")
                payload: dict[str, object] = {
                    "node_id": record.node_id,
                    "heartbeat_interval": self.registry.heartbeat_interval,
                    "heartbeat_timeout": self.registry.heartbeat_timeout,
                }
            elif path == "/heartbeat":
                beat = parse_heartbeat(body)
                if not self.registry.heartbeat(
                    beat.node_id, beat.fingerprints, beat.stats
                ):
                    # Evicted while partitioned: tell it to re-register.
                    await self._write_response(
                        writer,
                        404,
                        encode_error(
                            f"unknown node {beat.node_id}; re-register"
                        ),
                        close=not keep_alive,
                    )
                    return keep_alive
                self.metrics.inc("repro_cluster_heartbeats_total")
                payload = {"status": "ok"}
            else:
                goodbye = parse_leave(body)
                known = self.registry.leave(goodbye.node_id) is not None
                self.cluster.forget(goodbye.node_id)
                payload = {"status": "ok", "known": known}
        except ProtocolError as error:
            await self._write_response(
                writer, 400, encode_error(str(error)), close=not keep_alive
            )
            return keep_alive
        self.publish_cluster_gauges()
        await self._write_response(
            writer,
            200,
            json.dumps(payload, sort_keys=True).encode("utf-8"),
            close=not keep_alive,
        )
        return keep_alive


# -- entry points ---------------------------------------------------------------


async def _coordinate_until_signalled(config: CoordinatorConfig) -> None:
    server = ClusterCoordinator(config)
    await server.start()
    host, port = server.address
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signal_number in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signal_number, stop.set)
            installed.append(signal_number)
        except NotImplementedError:  # non-Unix event loop
            pass
    print(
        f"repro coordinate: listening on http://{host}:{port} "
        f"(heartbeat={config.heartbeat_interval:g}s"
        f"/{config.heartbeat_timeout:g}s, "
        f"node-retries={config.node_retries})",
        file=sys.stderr,
        flush=True,
    )
    try:
        await stop.wait()
    finally:
        for signal_number in installed:
            loop.remove_signal_handler(signal_number)
    print("repro coordinate: draining…", file=sys.stderr, flush=True)
    await server.drain()
    print("repro coordinate: drained, bye", file=sys.stderr, flush=True)


def coordinate(config: CoordinatorConfig | None = None) -> int:
    """Run a coordinator until SIGTERM/SIGINT, then drain; the CLI entry."""
    try:
        asyncio.run(
            _coordinate_until_signalled(config or CoordinatorConfig())
        )
    except KeyboardInterrupt:  # loops without add_signal_handler support
        pass
    return 0


class CoordinatorThread(ServerThread):
    """A coordinator on a private event loop in a daemon thread.

    The in-process harness mirroring :class:`~repro.server.app.ServerThread`
    — the tests, docs quickstart, and benchmark E27 build small racks out
    of one of these plus a few :class:`~repro.cluster.node.WorkerNodeThread`.
    """

    def __init__(
        self,
        config: CoordinatorConfig | None = None,
        cache: SpannerCache | None = None,
    ) -> None:
        super().__init__(
            config if config is not None else CoordinatorConfig(port=0),
            cache=cache,
        )

    def _build(self) -> SpannerServer:
        return ClusterCoordinator(self.config, cache=self._cache)

    @property
    def coordinator(self) -> ClusterCoordinator:
        server = self.server
        assert isinstance(server, ClusterCoordinator)
        return server

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"
