"""Wire forms for the cluster control plane (register/heartbeat/leave).

The cluster speaks the same hand-rolled HTTP/JSON as the serving
endpoints (:mod:`repro.server.protocol`); this module owns the three
control-plane bodies a worker node POSTs to its coordinator:

* ``POST /register`` — ``{"url": ..., "node_id"?: ..., "fingerprints":
  [...], "stats": {...}}``; the coordinator answers with the assigned
  node id and the heartbeat cadence to follow;
* ``POST /heartbeat`` — ``{"node_id": ..., "fingerprints": [...],
  "stats": {...}}``; an unknown node id answers 404, telling the node to
  re-register (it was evicted while unreachable);
* ``POST /leave`` — ``{"node_id": ...}``; a clean goodbye.

Parsing raises :class:`~repro.server.protocol.ProtocolError` exactly like
the data-plane parsers, so the coordinator's HTTP layer answers 400 the
same way for both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.server.protocol import ProtocolError

__all__ = [
    "HeartbeatRequest",
    "LeaveRequest",
    "RegisterRequest",
    "parse_heartbeat",
    "parse_leave",
    "parse_register",
    "split_url",
]


def split_url(url: str) -> tuple[str, int]:
    """``(host, port)`` of an ``http://host:port`` node or coordinator URL.

    >>> split_url("http://127.0.0.1:8123")
    ('127.0.0.1', 8123)
    """
    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ValueError(f"cluster URLs are plain http, got {url!r}")
    if not parts.hostname or not parts.port:
        raise ValueError(f"need http://host:port, got {url!r}")
    return parts.hostname, parts.port


@dataclass(frozen=True)
class RegisterRequest:
    """A parsed ``POST /register`` body."""

    url: str
    node_id: str | None = None
    fingerprints: tuple[str, ...] = ()
    stats: dict = field(default_factory=dict)


@dataclass(frozen=True)
class HeartbeatRequest:
    """A parsed ``POST /heartbeat`` body."""

    node_id: str
    fingerprints: tuple[str, ...] | None = None
    stats: dict | None = None


@dataclass(frozen=True)
class LeaveRequest:
    """A parsed ``POST /leave`` body."""

    node_id: str


def _decode_object(body: bytes, what: str) -> dict:
    try:
        decoded = json.loads(body or b"null")
    except ValueError as error:
        raise ProtocolError(f"invalid JSON in {what} body: {error}") from None
    if not isinstance(decoded, dict):
        raise ProtocolError(f"{what} body must be a JSON object")
    return decoded


def _fingerprints(value, what: str) -> tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"{what} 'fingerprints' must be a list of strings")
    return tuple(value)


def _stats(value, what: str) -> dict:
    if not isinstance(value, dict):
        raise ProtocolError(f"{what} 'stats' must be a JSON object")
    return value


def parse_register(body: bytes) -> RegisterRequest:
    """Parse and validate a ``/register`` body."""
    decoded = _decode_object(body, "register")
    url = decoded.get("url")
    if not isinstance(url, str) or not url:
        raise ProtocolError("register needs a non-empty 'url' string")
    try:
        split_url(url)
    except ValueError as error:
        raise ProtocolError(f"register 'url': {error}") from None
    node_id = decoded.get("node_id")
    if node_id is not None and (not isinstance(node_id, str) or not node_id):
        raise ProtocolError("register 'node_id' must be a non-empty string")
    return RegisterRequest(
        url=url,
        node_id=node_id,
        fingerprints=_fingerprints(decoded.get("fingerprints", []), "register"),
        stats=_stats(decoded.get("stats", {}), "register"),
    )


def _node_id(decoded: dict, what: str) -> str:
    node_id = decoded.get("node_id")
    if not isinstance(node_id, str) or not node_id:
        raise ProtocolError(f"{what} needs a non-empty 'node_id' string")
    return node_id


def parse_heartbeat(body: bytes) -> HeartbeatRequest:
    """Parse and validate a ``/heartbeat`` body."""
    decoded = _decode_object(body, "heartbeat")
    fingerprints = decoded.get("fingerprints")
    stats = decoded.get("stats")
    return HeartbeatRequest(
        node_id=_node_id(decoded, "heartbeat"),
        fingerprints=None
        if fingerprints is None
        else _fingerprints(fingerprints, "heartbeat"),
        stats=None if stats is None else _stats(stats, "heartbeat"),
    )


def parse_leave(body: bytes) -> LeaveRequest:
    """Parse and validate a ``/leave`` body."""
    return LeaveRequest(node_id=_node_id(_decode_object(body, "leave"), "leave"))
