"""Remote execution of ``evaluate_records``-shaped batches over HTTP.

:class:`NodeClient` maps the executor seam's three batch kinds onto the
serving endpoints a worker node already exposes:

* ``kind="matches"``  → ``POST /evaluate`` (NonEmp verdicts);
* ``kind="extract"``  → ``POST /enumerate`` (``spans`` passed through);
* ``kind="mappings"`` → ``POST /enumerate`` with ``spans=true``, and the
  reply's ``[begin, end]`` pairs rebuilt into
  :class:`~repro.spans.Span`/:class:`~repro.spans.mapping.Mapping`
  objects so the caller gets byte-identical structures to local
  execution.

Documents travel under synthetic positional ids (``r0``, ``r1``, …) —
batch doc ids are only unique *per request* upstream, so originals are
restored by position on the way back out.

:class:`RemoteBackend` wraps one :class:`NodeClient` in the
:class:`~repro.service.backend.ExecutorBackend` contract, which is what
lets ``evaluate_corpus(..., backend=RemoteBackend(url))`` ship a whole
corpus to one remote server without any coordinator in the middle.

Errors split along the only axis the scheduler cares about:
:class:`RemoteUnavailable` (transport died / 5xx — retriable on another
node, sender should presume the node dead) versus
:class:`RemoteRejected` (a deterministic 4xx — re-sending elsewhere
would fail identically, run the batch locally instead).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

from repro.cluster.protocol import split_url
from repro.server.client import (
    RetryLaterError,
    ServerClient,
    ServerResponseError,
)
from repro.service.backend import ExecutorBackend, _check_kind
from repro.spans import Mapping, Span

__all__ = [
    "NodeClient",
    "RemoteBackend",
    "RemoteError",
    "RemoteRejected",
    "RemoteUnavailable",
    "remote_spec",
]


class RemoteError(Exception):
    """Base class for remote-batch failures."""


class RemoteUnavailable(RemoteError):
    """The node did not answer (connect/read failure, timeout, or 5xx).

    The batch may be requeued on another node; the sender should treat
    this node as dead until it heartbeats again.
    """


class RemoteRejected(RemoteError):
    """The node answered with a deterministic 4xx refusal.

    Re-sending the same batch to another node would fail the same way,
    so callers fall back to local execution.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class RemoteBusy(RemoteUnavailable):
    """A 422/429 refusal with a ``Retry-After`` hint: back off, then retry."""

    def __init__(self, status: int, message: str, retry_after: float) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


def remote_spec(engine) -> tuple[str, int] | None:
    """The ``(pattern, opt_level)`` wire form of ``engine``, or ``None``.

    Only engines planned from RGX *text* can be re-planned by a remote
    node; engines built straight from an AST/VA (no serialisable source)
    return ``None`` and run locally.
    """
    plan = getattr(engine, "plan", None)
    if plan is None:
        return None
    source = getattr(plan, "source", None)
    if not isinstance(source, str):
        return None
    return source, plan.opt_level


def _rebuild_payload(entry: dict, kind: str, spans: bool):
    """A wire result entry back into the local evaluate_records payload."""
    if kind == "matches":
        return entry["matches"]
    mappings = entry["mappings"]
    if kind == "extract":
        if not spans:
            return tuple(dict(record) for record in mappings)
        return tuple(
            {var: Span(pair[0], pair[1]) for var, pair in record.items()}
            for record in mappings
        )
    # kind == "mappings": always shipped with spans=true on the wire.
    return frozenset(
        Mapping({var: Span(pair[0], pair[1]) for var, pair in record.items()})
        for record in mappings
    )


class NodeClient:
    """A blocking, thread-safe batch caller for one worker node.

    Wraps a small pool of keep-alive :class:`ServerClient` connections
    (one per concurrent caller) so the cluster backend can run several
    batches against the same node in parallel.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        self.url = url
        self._host, self._port = split_url(url)
        self._timeout = timeout
        self._lock = threading.Lock()
        self._idle: list[ServerClient] = []
        self._closed = False

    def _lease(self) -> ServerClient:
        with self._lock:
            if self._closed:
                raise RemoteUnavailable(f"client for {self.url} is closed")
            if self._idle:
                return self._idle.pop()
        return ServerClient(self._host, self._port, timeout=self._timeout)

    def _give_back(self, client: ServerClient, *, broken: bool) -> None:
        if broken:
            client.close()
            return
        with self._lock:
            if not self._closed:
                self._idle.append(client)
                return
        client.close()

    def evaluate_batch(
        self,
        spec: tuple[str, int],
        records,
        kind: str = "mappings",
        spans: bool = False,
    ) -> list[tuple]:
        """Run one batch remotely; returns local-shaped result triples.

        ``records`` is the usual sequence of ``(doc_id, text)`` pairs;
        the return value is ``[(doc_id, payload, error), ...]`` exactly
        as :func:`~repro.service.evaluate.evaluate_records` would
        produce it.
        """
        _check_kind(kind)
        pattern, opt_level = spec
        pairs = list(records)
        documents = [
            {"id": f"r{position}", "text": text}
            for position, (_, text) in enumerate(pairs)
        ]
        client = self._lease()
        broken = True
        try:
            if kind == "matches":
                reply = client.evaluate(pattern, documents, opt_level)
            else:
                reply = client.enumerate(
                    pattern,
                    documents,
                    opt_level,
                    spans=True if kind == "mappings" else spans,
                )
            broken = False
        except RetryLaterError as error:
            broken = False  # the connection is fine; the node is shedding
            raise RemoteBusy(
                error.status, error.message, error.retry_after
            ) from error
        except ServerResponseError as error:
            if error.status >= 500:
                raise RemoteUnavailable(str(error)) from error
            broken = False
            raise RemoteRejected(error.status, error.message) from error
        except (ConnectionError, TimeoutError, OSError) as error:
            raise RemoteUnavailable(
                f"{self.url}: {type(error).__name__}: {error}"
            ) from error
        finally:
            self._give_back(client, broken=broken)
        results = reply.get("results", [])
        if len(results) != len(pairs):
            raise RemoteUnavailable(
                f"{self.url} returned {len(results)} results "
                f"for {len(pairs)} documents"
            )
        triples = []
        for (doc_id, _), entry in zip(pairs, results):
            error = entry.get("error")
            payload = (
                None
                if error is not None
                else _rebuild_payload(entry, kind, spans)
            )
            triples.append((doc_id, payload, error))
        return triples

    def healthz(self) -> dict:
        client = self._lease()
        broken = True
        try:
            reply = client.healthz()
            broken = False
            return reply
        except ServerResponseError:
            broken = False
            raise
        finally:
            self._give_back(client, broken=broken)

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
            self._closed = True
        for client in idle:
            client.close()


class RemoteBackend(ExecutorBackend):
    """The executor seam over one remote server.

    ``submit`` ships each batch to the node's HTTP endpoints on a small
    thread pool; engines without a serialisable source raise
    :class:`RemoteRejected` (callers that want transparent fallback go
    through the cluster backend, which handles that case by running the
    batch locally).
    """

    name = "remote"

    def __init__(self, url: str, *, timeout: float = 30.0, threads: int = 8):
        if threads < 1:
            raise ValueError("threads must be >= 1")
        self._client = NodeClient(url, timeout=timeout)
        self._threads = threads
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._batches = 0
        self._local_rejections = 0

    @property
    def parallelism(self) -> int:
        return self._threads

    @property
    def url(self) -> str:
        return self._client.url

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._threads,
                    thread_name_prefix="repro-remote",
                )
            return self._executor

    def _run(self, engine, records, kind: str, spans: bool):
        spec = remote_spec(engine)
        if spec is None:
            with self._lock:
                self._local_rejections += 1
            raise RemoteRejected(
                422, "engine has no serialisable pattern source"
            )
        triples = self._client.evaluate_batch(spec, records, kind, spans)
        with self._lock:
            self._batches += 1
        return triples

    def submit(
        self, engine, records, *, kind: str = "mappings", spans: bool = False
    ) -> Future:
        _check_kind(kind)
        return self._pool().submit(self._run, engine, list(records), kind, spans)

    def stats(self, fingerprint: str | None = None) -> dict:
        with self._lock:
            return {
                "backend": self.name,
                "url": self._client.url,
                "batches": self._batches,
                "rejections": self._local_rejections,
            }

    def close(self, wait: bool = True) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        if executor is not None:
            executor.shutdown(wait=wait)
        self._client.close()
