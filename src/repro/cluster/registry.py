"""The coordinator's membership table: who is alive, warm, and loaded.

:class:`NodeRegistry` tracks every registered worker node — advertise
URL, last heartbeat, advertised warm engine fingerprints, inflight batch
count, and a per-node :class:`~repro.service.resilience.CircuitBreaker`.
It is the single source of truth the scheduling loop consults:

* :meth:`acquire` leases the best node for a batch — among nodes whose
  breaker admits traffic, the one with the fewest inflight batches,
  warm-for-this-fingerprint nodes winning ties.  Min-inflight first (not
  strictly warm-first) keeps the rack balanced while still *earning*
  warm hits, because :meth:`release` records which node just ran which
  fingerprint.
* :meth:`evict_stale` drops nodes whose heartbeat is overdue; a node
  that was merely partitioned re-registers on its next beat (it gets a
  404) and — because node ids are a stable digest of the advertise URL —
  comes back under the *same* id.

Time is injected (``clock=``) so eviction tests run on a fake clock.

>>> registry = NodeRegistry(heartbeat_interval=2.0)
>>> record = registry.register("http://127.0.0.1:9001")
>>> record.node_id == NodeRegistry.stable_node_id("http://127.0.0.1:9001")
True
>>> leased, warm = registry.acquire("abc123")
>>> (leased.node_id == record.node_id, warm)
(True, False)
>>> registry.release(leased.node_id, ok=True, fingerprint="abc123")
>>> registry.acquire("abc123")[1]   # the win was recorded: now warm
True
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.cluster.protocol import split_url
from repro.service.resilience import CircuitBreaker

__all__ = ["NodeRecord", "NodeRegistry"]

#: Breaker defaults for a node: two straight failures open it, and it
#: half-opens again after a second — long enough to shed a flapping node,
#: short enough that a recovered one rejoins the rotation quickly.
_BREAKER_FAILURES = 2
_BREAKER_RESET = 1.0


@dataclass
class NodeRecord:
    """One registered worker node (mutated only under the registry lock)."""

    node_id: str
    url: str
    host: str
    port: int
    fingerprints: set[str] = field(default_factory=set)
    stats: dict = field(default_factory=dict)
    registered_at: float = 0.0
    last_beat: float = 0.0
    inflight: int = 0
    batches: int = 0
    failures: int = 0
    breaker: CircuitBreaker = None  # type: ignore[assignment]

    def describe(self) -> dict:
        """A JSON-safe snapshot for ``/healthz`` and logs."""
        return {
            "node_id": self.node_id,
            "url": self.url,
            "inflight": self.inflight,
            "batches": self.batches,
            "failures": self.failures,
            "fingerprints": len(self.fingerprints),
            "stats": dict(self.stats),
        }


class NodeRegistry:
    """Thread-safe membership + lease bookkeeping for the coordinator."""

    def __init__(
        self,
        heartbeat_interval: float = 2.0,
        heartbeat_timeout: float | None = None,
        *,
        clock=time.monotonic,
    ) -> None:
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if heartbeat_timeout is None:
            heartbeat_timeout = 3.0 * heartbeat_interval
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed the interval")
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self._clock = clock
        self._lock = threading.RLock()
        self._nodes: dict[str, NodeRecord] = {}
        self._registrations = 0
        self._heartbeats = 0
        self._evictions = 0
        self._leaves = 0

    @staticmethod
    def stable_node_id(url: str) -> str:
        """A node id derived from the advertise URL.

        Deterministic on purpose: a node that is evicted while
        partitioned and then re-registers gets the *same* id back, so
        coordinator-side dashboards and affinity history survive the
        round trip.
        """
        digest = hashlib.sha256(url.encode("utf-8")).hexdigest()
        return f"node-{digest[:12]}"

    # -- membership ---------------------------------------------------

    def register(
        self,
        url: str,
        fingerprints=(),
        stats: dict | None = None,
        node_id: str | None = None,
    ) -> NodeRecord:
        """Add (or refresh) the node serving at ``url``; upserts by id."""
        host, port = split_url(url)
        node_id = node_id or self.stable_node_id(url)
        now = self._clock()
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                record = NodeRecord(
                    node_id=node_id,
                    url=url,
                    host=host,
                    port=port,
                    registered_at=now,
                    breaker=CircuitBreaker(
                        failure_threshold=_BREAKER_FAILURES,
                        reset_timeout=_BREAKER_RESET,
                        clock=self._clock,
                    ),
                )
                self._nodes[node_id] = record
            record.url, record.host, record.port = url, host, port
            record.fingerprints = set(fingerprints)
            if stats is not None:
                record.stats = dict(stats)
            record.last_beat = now
            self._registrations += 1
            return record

    def heartbeat(
        self,
        node_id: str,
        fingerprints=None,
        stats: dict | None = None,
    ) -> bool:
        """Record a beat; ``False`` means unknown node (it must re-register)."""
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                return False
            record.last_beat = self._clock()
            if fingerprints is not None:
                # The advertised cache listing is authoritative — it is
                # read straight off the node's SpannerCache, so it
                # already contains anything we learned via release().
                record.fingerprints = set(fingerprints)
            if stats is not None:
                record.stats = dict(stats)
            self._heartbeats += 1
            return True

    def leave(self, node_id: str) -> NodeRecord | None:
        """Remove a node that said goodbye (clean shutdown)."""
        with self._lock:
            record = self._nodes.pop(node_id, None)
            if record is not None:
                self._leaves += 1
            return record

    def evict(self, node_id: str) -> NodeRecord | None:
        """Forcibly drop a node (unreachable mid-batch, or stale)."""
        with self._lock:
            record = self._nodes.pop(node_id, None)
            if record is not None:
                self._evictions += 1
            return record

    def evict_stale(self) -> list[NodeRecord]:
        """Drop every node whose last beat is older than the timeout."""
        deadline = self._clock() - self.heartbeat_timeout
        with self._lock:
            stale = [
                record
                for record in self._nodes.values()
                if record.last_beat < deadline
            ]
            for record in stale:
                del self._nodes[record.node_id]
            self._evictions += len(stale)
            return stale

    # -- scheduling ---------------------------------------------------

    def acquire(self, fingerprint: str | None = None):
        """Lease the best node for a batch, or ``None`` when no node will do.

        Returns ``(record, warm)`` where ``warm`` says the node already
        advertised the batch's engine fingerprint.  The lease bumps the
        node's inflight count; callers must :meth:`release` it.
        """
        with self._lock:
            candidates = [
                record
                for record in self._nodes.values()
                if record.breaker.allow()
            ]
            if not candidates:
                return None
            best = min(
                candidates,
                key=lambda record: (
                    record.inflight,
                    # Tie-break warm-first (False sorts before True).
                    not (fingerprint and fingerprint in record.fingerprints),
                    record.registered_at,
                ),
            )
            best.inflight += 1
            warm = bool(fingerprint) and fingerprint in best.fingerprints
            return best, warm

    def release(
        self, node_id: str, ok: bool, fingerprint: str | None = None
    ) -> None:
        """Return a lease; on success, remember the node is now warm."""
        with self._lock:
            record = self._nodes.get(node_id)
            if record is None:
                return  # evicted while the batch was in flight
            record.inflight = max(0, record.inflight - 1)
            if ok:
                record.batches += 1
                record.breaker.record_success()
                if fingerprint:
                    record.fingerprints.add(fingerprint)
            else:
                record.failures += 1
                record.breaker.record_failure()

    # -- introspection ------------------------------------------------

    def nodes(self) -> list[NodeRecord]:
        """A snapshot list of the live records (registration order)."""
        with self._lock:
            return list(self._nodes.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def describe(self) -> dict:
        """JSON-safe topology + counters for ``/healthz``."""
        with self._lock:
            return {
                "nodes": [record.describe() for record in self._nodes.values()],
                "registrations": self._registrations,
                "heartbeats": self._heartbeats,
                "evictions": self._evictions,
                "leaves": self._leaves,
            }

    def counters(self) -> dict[str, int]:
        with self._lock:
            return {
                "registrations": self._registrations,
                "heartbeats": self._heartbeats,
                "evictions": self._evictions,
                "leaves": self._leaves,
            }
