"""The distributed serving tier: coordinator + rack worker nodes.

One :class:`ClusterCoordinator` is the front door — a stock
:class:`~repro.server.app.SpannerServer` whose dispatcher executes
batches through a :class:`ClusterBackend` (the
:class:`~repro.service.backend.ExecutorBackend` seam) onto registered
worker nodes.  Each worker node (``repro worker --join URL``) is itself
a stock server plus a :class:`~repro.cluster.node.NodeAgent` that
registers, heartbeats, and advertises its warm engine fingerprints so
the coordinator can route with cache affinity.  Dead nodes are evicted
and their in-flight shards requeued; an empty cluster degrades to local
execution instead of failing.  ``docs/cluster.md`` tells the whole
story.

>>> from repro.cluster import CoordinatorConfig, CoordinatorThread
>>> from repro.cluster import WorkerNodeThread
>>> from repro.server import ServerClient
>>> with CoordinatorThread(CoordinatorConfig(port=0)) as coordinator:
...     with WorkerNodeThread(coordinator.url) as node:
...         _ = node.agent.wait_registered(timeout=10.0)
...         client = ServerClient(*coordinator.address)
...         reply = client.enumerate(".*x{a+}.*", ["baa"])
...         client.close()
>>> reply["results"][0]["mappings"]
[{'x': 'a'}, {'x': 'aa'}, {'x': 'a'}]
"""

from repro.cluster.coordinator import (
    ClusterBackend,
    ClusterCoordinator,
    CoordinatorConfig,
    CoordinatorThread,
    coordinate,
)
from repro.cluster.node import NodeAgent, WorkerNodeThread, run_worker
from repro.cluster.registry import NodeRecord, NodeRegistry
from repro.cluster.remote import (
    NodeClient,
    RemoteBackend,
    RemoteBusy,
    RemoteError,
    RemoteRejected,
    RemoteUnavailable,
    remote_spec,
)

__all__ = [
    "ClusterBackend",
    "ClusterCoordinator",
    "CoordinatorConfig",
    "CoordinatorThread",
    "NodeAgent",
    "NodeClient",
    "NodeRecord",
    "NodeRegistry",
    "RemoteBackend",
    "RemoteBusy",
    "RemoteError",
    "RemoteRejected",
    "RemoteUnavailable",
    "WorkerNodeThread",
    "coordinate",
    "remote_spec",
    "run_worker",
]
