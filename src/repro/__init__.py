"""repro — a reproduction of *Document Spanners for Extracting Incomplete
Information: Expressiveness and Complexity* (Maturana, Riveros, Vrgoč,
PODS 2018).

The package implements the paper's three information-extraction formalisms
under the mapping-based semantics — variable regex (:mod:`repro.rgx`),
variable-set automata (:mod:`repro.automata`) and extraction rules
(:mod:`repro.rules`) — together with the evaluation algorithms of Section 5
(:mod:`repro.evaluation`), the static analysis of Section 6
(:mod:`repro.analysis`), the hardness reductions used as benchmark workloads
(:mod:`repro.reductions`) and synthetic workload generators
(:mod:`repro.workloads`).

**The public Python surface is** :mod:`repro.api` — ``compile``,
``evaluate``, ``enumerate``, ``query``, ``connect``::

    >>> from repro import api
    >>> engine = api.compile(".*Seller: x{[^,]*},.*")
    >>> [m["x"] for m in engine.extract("Seller: John, ID75")]
    ['John']

The paper-level building blocks (``parse``, ``mappings``, ``Span``,
``Mapping``, …) stay importable from here; the old engine entry points
``repro.Spanner`` and ``repro.compile_spanner`` are deprecated in favour
of :func:`repro.api.compile` and warn on first use.
"""

import warnings as _warnings

from repro.alphabet import CharSet
from repro.engine.compiled import CompiledSpanner
from repro.plan import Plan
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.service.cache import SpannerCache
from repro.service.corpus import Corpus, DirectoryCorpus, InMemoryCorpus
from repro.service.evaluate import CorpusResult, evaluate_corpus, extract_corpus
from repro.spans.document import Document
from repro.spans.mapping import NULL, ExtendedMapping, Mapping, join
from repro.spans.span import Span

__version__ = "1.8.0"

#: Deprecated top-level names: {name: (module, attribute, replacement)}.
#: Resolved lazily via module __getattr__ so ``import repro`` stays silent
#: and each name warns exactly once per process (the resolved object is
#: cached into the module namespace).
_DEPRECATED = {
    "Spanner": ("repro.spanner", "Spanner", "repro.api.compile"),
    "compile_spanner": (
        "repro.engine.compiled",
        "compile_spanner",
        "repro.api.compile",
    ),
}

__all__ = [
    "CharSet",
    "CompiledSpanner",
    "Corpus",
    "CorpusResult",
    "DirectoryCorpus",
    "Document",
    "ExtendedMapping",
    "InMemoryCorpus",
    "Mapping",
    "NULL",
    "Plan",
    "Span",
    "Spanner",
    "SpannerCache",
    "compile_spanner",
    "evaluate_corpus",
    "extract_corpus",
    "join",
    "mappings",
    "parse",
    "__version__",
]


def __getattr__(name: str):
    deprecated = _DEPRECATED.get(name)
    if deprecated is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module_name, attribute, replacement = deprecated
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    value = getattr(importlib.import_module(module_name), attribute)
    globals()[name] = value  # warn once: later lookups bypass __getattr__
    return value
