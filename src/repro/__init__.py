"""repro — a reproduction of *Document Spanners for Extracting Incomplete
Information: Expressiveness and Complexity* (Maturana, Riveros, Vrgoč,
PODS 2018).

The package implements the paper's three information-extraction formalisms
under the mapping-based semantics — variable regex (:mod:`repro.rgx`),
variable-set automata (:mod:`repro.automata`) and extraction rules
(:mod:`repro.rules`) — together with the evaluation algorithms of Section 5
(:mod:`repro.evaluation`), the static analysis of Section 6
(:mod:`repro.analysis`), the hardness reductions used as benchmark workloads
(:mod:`repro.reductions`) and synthetic workload generators
(:mod:`repro.workloads`).

Quickstart::

    >>> from repro import parse, mappings
    >>> doc = "Seller: John, ID75"
    >>> expr = parse(".*Seller: x{[^,]*},.*")
    >>> [m["x"].content(doc) for m in mappings(expr, doc)]
    ['John']
"""

from repro.alphabet import CharSet
from repro.engine import CompiledSpanner, compile_spanner
from repro.plan import Plan
from repro.rgx.parser import parse
from repro.rgx.semantics import mappings
from repro.service import (
    Corpus,
    CorpusResult,
    DirectoryCorpus,
    InMemoryCorpus,
    SpannerCache,
    evaluate_corpus,
    extract_corpus,
)
from repro.spanner import Spanner
from repro.spans.document import Document
from repro.spans.mapping import NULL, ExtendedMapping, Mapping, join
from repro.spans.span import Span

__version__ = "1.3.0"

__all__ = [
    "CharSet",
    "CompiledSpanner",
    "Corpus",
    "CorpusResult",
    "DirectoryCorpus",
    "Document",
    "ExtendedMapping",
    "InMemoryCorpus",
    "Mapping",
    "NULL",
    "Plan",
    "Span",
    "Spanner",
    "SpannerCache",
    "compile_spanner",
    "evaluate_corpus",
    "extract_corpus",
    "join",
    "mappings",
    "parse",
    "__version__",
]
