"""Vectorized lockstep sweeps over the flat tables (the numpy layer).

The flat layer (:class:`~repro.engine.kernel.FlatTables`) made the
per-document sweep two indexed loads per character — but still one
*python-level* loop iteration per character per document.  This module
removes the per-document loop for corpus batches: the interned flat-DFA
rows are mirrored into one contiguous 2-D numpy table
(``table[sid, class_id] → sid``), and a whole batch of documents
advances in lockstep — one fancy-indexed gather per document *position*
moves every document's state id at once, so the python-loop cost is
``O(max_len)`` per batch instead of ``O(total_chars)``.

Three batch entry points sit on top of the lockstep sweep:

* :func:`batch_index` — forward reach and backward coreach sweeps for a
  document batch, yielding ready
  :class:`~repro.engine.tables.DocumentIndex` objects (on ≤64-state
  automata they additionally carry per-position ``uint64`` mask arrays,
  so candidate-span filtering in
  :meth:`~repro.engine.tables.DocumentIndex.open_positions` is one
  vectorized bitwise pass instead of a per-position python loop);
* :func:`batch_accept` — NonEmp verdicts for a batch on sequential
  automata, straight off the forward reach sweep (the state walked is
  exactly the one ``eval_sequential_flat`` walks with no pins, so the
  verdicts are identical by construction);
* :func:`op_positions_np` — the vectorized per-variable open/close
  position filter over precomputed reach/coreach mask arrays.

Every helper returns ``None`` whenever the fast path cannot run —
numpy absent or disabled (``REPRO_NO_NUMPY=1``), the layer switched off
(``REPRO_NO_VECTOR=1`` / :func:`vector_disabled`), the kernel or flat
layer off, more than 256 alphabet classes, a batch too large to pad
densely, or :class:`~repro.engine.kernel.FlatOverflow` during
exploration — and the caller falls back to the per-document flat path,
which computes the same states from the same tables.  Outputs are
bit-identical either way; ``tests/engine/test_vector.py`` cross-validates
this differentially.

Before a batch sweep the flat DFA is *completed* — every transition of
every interned state is explored eagerly (still budgeted by
``FLAT_STATE_LIMIT``), so the inner loop needs no miss handling and the
mirror only has to catch up when a genuinely new state was interned.
Per-document and batch sweeps warm the same DFA either way.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.engine.kernel import FlatOverflow, numpy_or_none

#: Upper bound on the padded class matrix (documents × max_len cells) a
#: single lockstep sweep may allocate.  Two matrices of this many int32
#: cells (~128 MB each at the bound) is the worst case; above it the
#: caller falls back to per-document sweeps rather than risk a dense-pad
#: blow-up on skewed batches (one huge document next to tiny ones).
_BATCH_CELL_LIMIT = 1 << 25

_VECTOR_ENABLED = True


def vector_enabled() -> bool:
    """Whether the vector layer is active (see :func:`vector_disabled`).

    Requires numpy (see :func:`~repro.engine.kernel.numpy_or_none`);
    ``REPRO_NO_VECTOR=1`` forces the per-document flat paths process-wide
    while leaving numpy document-interning on — the same 0/1 convention
    as ``REPRO_NO_FLAT`` one layer down.
    """
    return (
        _VECTOR_ENABLED
        and os.environ.get("REPRO_NO_VECTOR", "") in ("", "0")
        and numpy_or_none() is not None
    )


@contextmanager
def vector_disabled():
    """Force the per-document flat paths (benchmarks and cross-validation).

    >>> from repro.engine.compiled import compile_spanner
    >>> engine = compile_spanner(".*x{a+}.*")
    >>> with vector_disabled():
    ...     old = engine.matches_many(["baa", "bb"])
    >>> engine.matches_many(["baa", "bb"]) == old
    True
    """
    global _VECTOR_ENABLED
    previous = _VECTOR_ENABLED
    _VECTOR_ENABLED = False
    try:
        yield
    finally:
        _VECTOR_ENABLED = previous


class _DfaMirror:
    """A completed numpy mirror of one :class:`~repro.engine.kernel.FlatDFA`.

    ``table[sid, class_id]`` mirrors ``dfa.rows[sid][class_id]``, with
    one extra *pad* column (``class_id == num_classes``) that maps every
    sid to the dead state — lanes past their document's end ride the pad
    class, so the lockstep inner loop needs no per-position length
    gating.  Before a sweep the underlying DFA is *completed*
    (:meth:`complete`): every transition of every interned state is
    explored eagerly (still budgeted by ``FLAT_STATE_LIMIT`` through
    ``intern``), so gathers never see an unexplored ``-1`` and the inner
    loop is one multiply-add plus one flat gather per position.
    ``masks64`` maps sids to their state masks as ``uint64`` on
    ≤64-state automata (``None`` beyond that).
    """

    __slots__ = ("dfa", "np", "table", "masks64", "_synced", "_completed")

    def __init__(self, dfa, np_module) -> None:
        self.dfa = dfa
        self.np = np_module
        self.table = np_module.zeros((0, dfa.num_classes + 1), dtype=np_module.int32)
        self.masks64 = (
            np_module.zeros(0, dtype=np_module.uint64)
            if dfa.num_states <= 64
            else None
        )
        self._synced = 0
        self._completed = 0

    def complete(self):
        """Explore every transition, mirror the rows, return the table.

        Completion can intern new states (whose rows are then completed
        in turn), so a powerset-heavy automaton raises
        :class:`~repro.engine.kernel.FlatOverflow` here and the batch
        falls back per document — exactly the engines whose lazy sweeps
        were about to overflow anyway.  Once closed, per-document sweeps
        share the same DFA and can never miss, so later calls are
        no-ops until someone interns a genuinely new state.
        """
        np = self.np
        dfa = self.dfa
        rows = dfa.rows
        num_classes = dfa.num_classes
        sid = self._completed
        if sid < len(rows):
            explore = dfa.explore
            while sid < len(rows):
                row = rows[sid]
                for class_id in range(num_classes):
                    if row[class_id] < 0:
                        explore(sid, class_id)
                sid += 1
            # Rows mirrored before this pass may have gained entries
            # (their -1 slots were just explored): recopy from scratch.
            self._synced = min(self._synced, self._completed)
            self._completed = sid
        count = len(rows)
        if count > len(self.table):
            grown = np.zeros((count, num_classes + 1), dtype=np.int32)
            grown[: len(self.table)] = self.table
            self.table = grown
            if self.masks64 is not None:
                masks_grown = np.zeros(count, dtype=np.uint64)
                masks_grown[: self.masks64.shape[0]] = self.masks64
                self.masks64 = masks_grown
        if num_classes:
            table = self.table
            for row_id in range(self._synced, count):
                table[row_id, :num_classes] = np.frombuffer(
                    rows[row_id], dtype=np.int32
                )
        if self.masks64 is not None:
            masks = dfa.masks
            for row_id in range(self._synced, count):
                self.masks64[row_id] = masks[row_id]
        self._synced = count
        return self.table


class VectorTables:
    """The vector layer of one :class:`~repro.engine.kernel.FlatTables`:
    forward and reverse DFA mirrors, built lazily and cached on the flat
    tables (so they share the kernel's lifetime)."""

    __slots__ = ("flat", "np", "mirror", "mirror_rev")

    def __init__(self, flat) -> None:
        np = numpy_or_none()
        if np is None:  # pragma: no cover - callers gate on vector_enabled
            raise RuntimeError("vector layer requires numpy")
        self.flat = flat
        self.np = np
        self.mirror = _DfaMirror(flat.dfa, np)
        self.mirror_rev = _DfaMirror(flat.dfa_rev, np)


def vector_tables(flat) -> VectorTables:
    """The (cached) vector layer of one flat-table instance."""
    tables = flat._vector
    if tables is None:
        tables = VectorTables(flat)
        flat._vector = tables
    return tables


def _flat_or_none(cva):
    """The (kernel, flat) pair when every layer below us is on, else ``None``."""
    if not vector_enabled():
        return None
    kernel = cva.kernel_or_none()
    if kernel is None:
        return None
    flat = kernel.flat_or_none()
    if flat is None or flat.num_classes > 256:
        # >256 classes interns to tuples, not bytes — stay per-document.
        return None
    return kernel, flat


def _lockstep(mirror, np, classes_t, start_sid):
    """Advance every lane through ``classes_t`` rows in lockstep.

    ``classes_t`` is *position-major* — ``classes_t[pos]`` is the
    contiguous vector of every lane's class id at ``pos``, with lanes
    past their document's end holding the pad class (which every sid
    maps to the dead state, and sid 0 self-loops on everything) — so the
    inner loop is one flat gather per position with no length gating and,
    thanks to :meth:`_DfaMirror.complete`, no miss checks.  ``out[pos,
    lane]`` is lane ``lane``'s sid after consuming its character at
    ``pos`` (0 beyond its length).
    """
    table = mirror.complete()
    flat_table = table.ravel()
    width = table.shape[1]
    # sid * width + class_id stays inside the table, so int32 index math
    # is safe unless the table itself outgrows int32.
    wide = table.size > 2**31 - 1
    maxlen, ndocs = classes_t.shape
    out = np.zeros((maxlen, ndocs), dtype=np.int32)
    current = np.full(ndocs, start_sid, dtype=np.int32)
    for pos in range(maxlen):
        if wide:  # pragma: no cover - needs a >2^31-cell table
            current = current.astype(np.int64)
        current = flat_table[current * width + classes_t[pos]]
        out[pos] = current
        if not (pos & 31) and not current.any():
            break  # every lane dead; the rest stays 0
    return out


def _class_matrices(np, sequences, pad, include_backward=True):
    """Position-major padded class matrices ``(forward, reversed)``.

    ``None`` when dense padding would exceed :data:`_BATCH_CELL_LIMIT`.
    The reversed matrix is left-aligned (each lane's classes reversed,
    then padded on the right) so both sweeps share one lockstep loop;
    forward-only callers (NonEmp verdicts) skip building it.
    """
    count = len(sequences)
    maxlen = max((len(seq) for seq in sequences), default=0)
    if count * maxlen > _BATCH_CELL_LIMIT:
        return None

    if pad <= 0xFF:
        # Classes intern to bytes, so padding is one C-speed ljust+join.
        pad_byte = bytes((pad,))

        def padded(rows):
            buffer = b"".join(row.ljust(maxlen, pad_byte) for row in rows)
            grid = np.frombuffer(buffer, dtype=np.uint8).reshape(count, maxlen)
            return np.ascontiguousarray(grid.T)

        forward = padded(sequences)
        backward = (
            padded([seq[::-1] for seq in sequences]) if include_backward else None
        )
        return forward, backward

    # 256 classes: the pad id does not fit a byte, so fill lane by lane.
    forward = np.full((count, maxlen), pad, dtype=np.uint16)
    backward = np.full((count, maxlen), pad, dtype=np.uint16) if include_backward else None
    for lane, seq in enumerate(sequences):
        if seq:
            row = np.frombuffer(seq, dtype=np.uint8)
            forward[lane, : len(seq)] = row
            if backward is not None:
                backward[lane, : len(seq)] = row[::-1]
    return (
        np.ascontiguousarray(forward.T),
        np.ascontiguousarray(backward.T) if backward is not None else None,
    )


def batch_reach(cva, texts):
    """Forward reach sweeps for a batch: ``(flat, reach_sid_rows)``.

    ``reach_sid_rows[i]`` lists document ``i``'s flat-DFA sid per
    position, aligned with the per-document ``reach_ids`` layout
    (``[0, start, after-char-1, ...]``).  ``None`` whenever the vector
    path cannot run — the caller falls back per document.
    """
    layers = _flat_or_none(cva)
    if layers is None:
        return None
    kernel, flat = layers
    np = numpy_or_none()
    try:
        sequences = [flat.intern(text) for text in texts]
        matrices = _class_matrices(np, sequences, flat.num_classes)
        if matrices is None:
            return None
        forward, _ = matrices
        tables = vector_tables(flat)
        start = flat.dfa.intern(kernel.free[cva.initial])
        out = _lockstep(tables.mirror, np, forward, start)
    except FlatOverflow:
        return None
    rows = []
    for lane, seq in enumerate(sequences):
        ids = np.zeros(len(seq) + 2, dtype=np.int32)
        ids[1] = start
        ids[2:] = out[: len(seq), lane]
        rows.append(ids)
    return flat, rows


def batch_accept(cva, texts):
    """NonEmp verdicts for a batch of documents, or ``None``.

    Only valid on sequential automata (``cva.is_sequential``): the
    forward reach sweep then walks exactly the DFA the unpinned
    ``eval_sequential_flat`` walks, so the final-state bit at document
    end *is* the verdict.  Verdict extraction never materialises
    per-document sweep rows — one gather pulls every lane's final sid.
    """
    if not cva.is_sequential:
        return None
    layers = _flat_or_none(cva)
    if layers is None:
        return None
    kernel, flat = layers
    np = numpy_or_none()
    try:
        sequences = [flat.intern(text) for text in texts]
        matrices = _class_matrices(
            np, sequences, flat.num_classes, include_backward=False
        )
        if matrices is None:
            return None
        forward, _ = matrices
        tables = vector_tables(flat)
        start = flat.dfa.intern(kernel.free[cva.initial])
        out = _lockstep(tables.mirror, np, forward, start)
    except FlatOverflow:
        return None
    count = len(sequences)
    if out.shape[0] == 0:  # every document empty: all lanes sit on start
        finals = np.full(count, start, dtype=np.int32)
    else:
        lengths = np.array([len(seq) for seq in sequences], dtype=np.int64)
        finals = np.where(
            lengths > 0,
            out[np.maximum(lengths, 1) - 1, np.arange(count)],
            start,
        )
    final = cva.final
    masks64 = tables.mirror.masks64
    if masks64 is not None:
        bit = np.uint64(1) << np.uint64(final)
        return ((masks64[finals] & bit) != 0).tolist()
    masks = flat.dfa.masks
    return [bool((masks[sid] >> final) & 1) for sid in finals.tolist()]


def batch_index(cva, texts):
    """Ready :class:`~repro.engine.tables.DocumentIndex` objects for a
    batch (forward reach + backward coreach in lockstep), or ``None``.

    On ≤64-state automata the indexes carry per-position ``uint64`` mask
    arrays, enabling the vectorized candidate-span filter
    (:func:`op_positions_np`).
    """
    from repro.engine.tables import DocumentIndex

    layers = _flat_or_none(cva)
    if layers is None:
        return None
    kernel, flat = layers
    np = numpy_or_none()
    try:
        sequences = [flat.intern(text) for text in texts]
        matrices = _class_matrices(np, sequences, flat.num_classes)
        if matrices is None:
            return None
        forward, backward = matrices
        tables = vector_tables(flat)
        start = flat.dfa.intern(kernel.free[cva.initial])
        start_rev = flat.dfa_rev.intern(kernel.free_rev[cva.final])
        out = _lockstep(tables.mirror, np, forward, start)
        out_rev = _lockstep(tables.mirror_rev, np, backward, start_rev)
    except FlatOverflow:
        return None
    masks = flat.dfa.masks
    masks_rev = flat.dfa_rev.masks
    mirror, mirror_rev = tables.mirror, tables.mirror_rev
    indexes = []
    for lane, text in enumerate(texts):
        length = len(sequences[lane])
        reach_ids = np.zeros(length + 2, dtype=np.int32)
        reach_ids[1] = start
        reach_ids[2:] = out[:length, lane]
        coreach_ids = np.zeros(length + 2, dtype=np.int32)
        coreach_ids[-1] = start_rev
        coreach_ids[1 : length + 1] = out_rev[:length, lane][::-1]
        reach_np = coreach_np = None
        if mirror.masks64 is not None:
            reach_np = mirror.masks64[reach_ids]
            coreach_np = mirror_rev.masks64[coreach_ids]
        indexes.append(
            DocumentIndex.from_flat_sweeps(
                cva,
                text,
                sequences[lane],
                [masks[sid] for sid in reach_ids.tolist()],
                [masks_rev[sid] for sid in coreach_ids.tolist()],
                reach_np,
                coreach_np,
            )
        )
    return indexes


def op_positions_np(reach_np, coreach_np, edges):
    """Positions where any ``(source, target)`` op edge is live, or ``None``.

    The vectorized form of the per-position loop in
    :meth:`~repro.engine.tables.DocumentIndex.open_positions`: a span
    operation can fire at ``pos`` iff some edge has its source in
    ``reach[pos]`` and its target in ``coreach[pos]``.  Index 0 of the
    mask arrays is always 0, so the result lands in ``1..end`` exactly
    like the python loop.
    """
    np = numpy_or_none()
    if np is None:
        return None
    live = None
    for source, target in edges:
        hit = (reach_np & np.uint64(1 << source)) != 0
        hit &= (coreach_np & np.uint64(1 << target)) != 0
        live = hit if live is None else live | hit
    return np.nonzero(live)[0].tolist()
