"""Bitmask kernel: alphabet compression + lazy-DFA state sets.

The set-based sweeps in :mod:`repro.engine.tables` and
:mod:`repro.engine.oracle` simulate the NFA as Python sets of tuples —
per-character dict lookups, ``frozenset`` churn, and a worklist loop at
every document position.  This module applies two classic regex-engine
techniques (the machinery behind RE2-style lazy DFAs) to variable-set
automata:

* **Alphabet compression** (:class:`AlphabetClasses`) — characters are
  partitioned once per :class:`~repro.engine.tables.CompiledVA` into
  equivalence classes by which ``Sym`` edges they enable.  Cofinite
  charsets (``Σ - S``) contribute a *residual* class standing for every
  character no predicate mentions.  Each document is interned once into a
  class-id sequence, after which the simulation never touches characters.

* **Bitmask state sets** (:class:`Kernel`) — a state set is a Python int
  with bit ``q`` for state ``q``.  Free closure (ε and variable
  operations treated as free moves) is precomputed per state as a mask,
  so closing a set is an OR-fold instead of a worklist loop; the letter
  step is a per-class per-state target-mask table (plus its transpose,
  used by the backward co-reachability sweep).

* **A lazy DFA** — ``delta[(mask, class_id)] → mask`` memoises the
  composite "letter step then closure" transition on demand.  Repeated
  positions (the common case in CSV/log text) cost one dict hit.  The
  memo lives on the kernel, which lives on the ``CompiledVA``, so it is
  shared by every document a :class:`~repro.engine.compiled.CompiledSpanner`
  evaluates — and, through the worker-resident engine of
  :mod:`repro.service.evaluate`, by the whole corpus batch a worker
  processes.  Each memo is bounded by :data:`DELTA_LIMIT` entries;
  once full, transitions are still computed, just no longer recorded.

Pinned sweeps (the ``Eval`` oracle and enumeration nodes) run over a
:class:`SweepContext`: the same machinery with the closure graph
restricted by the pin context — operations of span-pinned variables only
fire where required, closes of ⊥-pinned variables never fire — and a
per-context delta memo.  Contexts are cached per kernel, so sibling
recursion nodes and repeated oracle calls share closures and memos.

* **Flat tables** (:class:`FlatTables` / :class:`FlatDFA`) — the third
  layer, on top of the mask kernel.  The lazy-DFA memo becomes an
  *interned* DFA: each distinct state mask gets a small integer id, and
  the memo is a contiguous class-indexed row per id (``array('i')``,
  ``-1`` = unexplored) instead of a ``(mask, class) → mask`` dict.
  Documents are interned to ``bytes`` of class ids in one C-level
  ``str.translate`` pass (with an optional numpy fast path for long
  documents), so the inner sweep loop is two indexed loads per
  character — no tuple allocation, no big-int hashing.  Mask blow-up is
  bounded by :data:`FLAT_STATE_LIMIT` interned states per DFA; beyond
  it :class:`FlatOverflow` drops the caller back to the dict kernel,
  which remains byte-for-byte identical in observable behaviour (the
  differential suite in ``tests/engine/test_flat_differential.py`` pins
  this down).  :func:`flat_disabled` forces the dict kernel for
  benchmarking (``bench_e25``) and cross-validation, mirroring
  :func:`kernel_disabled` one layer up.

The kernel accelerates the *sequential* sweep (Theorem 5.7) and the
op-free reachability index; the general FPT sweep (Theorem 5.10) keeps
the set-based representation — its states carry performed-sets and
status vectors that do not pack into per-state bits.  The set-based
sequential path also remains, both as the cross-validation baseline and
behind :func:`kernel_disabled` for old-vs-new benchmarking.
"""

from __future__ import annotations

import os
import warnings
from array import array
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.alphabet import CharSet

try:  # pragma: no cover - absence is exercised via monkeypatching in tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tables imports us)
    from repro.engine.tables import CompiledVA

#: Per-memo bound on lazy-DFA entries.  Each entry is two small ints and a
#: mask; the bound caps a kernel's memory at a few MB even on adversarial
#: document streams (see docs/api.md).
DELTA_LIMIT = 1 << 18

#: Interned class-id sequences kept per kernel (LRU, keyed by
#: ``(len(text), hash(text))`` with the text verified on hit).
_INTERN_LIMIT = 64

#: Pin contexts kept per kernel (LRU).  Enumeration revisits the same
#: (pinned, nulls) partitions at every recursion depth and across
#: documents, so this hit rate is high.
_CONTEXT_LIMIT = 256


def _env_limit(name: str, default: int, minimum: int = 1) -> int:
    """A positive integer tuning knob from the environment.

    Invalid values (non-integers, or below ``minimum``) warn and fall
    back to the default rather than poisoning import — soak runs set
    these once and should find out loudly, not crash every child
    process.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        value = minimum - 1
    if value < minimum:
        warnings.warn(
            f"{name}={raw!r} is not an integer >= {minimum}; "
            f"using the default {default}",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return value


#: Interned flat-DFA states per :class:`FlatDFA`.  Each state costs one
#: ``array('i')`` row of ``num_classes`` entries plus the mask itself;
#: the bound keeps a pathological (exponential-subset) automaton from
#: materialising its whole powerset — beyond it :class:`FlatOverflow`
#: sends the caller to the dict kernel, which stays lazy per (mask,
#: class) pair and is bounded by :data:`DELTA_LIMIT` on its own.
#: Overridable via ``REPRO_FLAT_STATE_LIMIT`` for soak-run tuning.
FLAT_STATE_LIMIT = _env_limit("REPRO_FLAT_STATE_LIMIT", 1 << 12)

#: Documents at least this long take the numpy interning path (when
#: numpy is importable): one vectorised table lookup over the UTF-32
#: code points instead of the per-character ``str.translate`` dict walk.
#: Overridable via ``REPRO_NUMPY_INTERN_MIN``.
_NUMPY_INTERN_MIN = _env_limit("REPRO_NUMPY_INTERN_MIN", 2048)


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when absent or disabled.

    ``REPRO_NO_NUMPY=1`` forces every numpy fast path off process-wide —
    the pure-python lane CI runs — without uninstalling anything; unset
    or ``0`` leaves numpy on when importable.  The single gate shared by
    document interning and the vector layer
    (:mod:`repro.engine.vector`).
    """
    if _np is None or os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        return None
    return _np

_ENABLED = True
_FLAT_ENABLED = True


class FlatOverflow(RuntimeError):
    """A flat DFA hit :data:`FLAT_STATE_LIMIT` — fall back to the dict kernel."""


def kernel_enabled() -> bool:
    """Whether the bitmask kernel is active (see :func:`kernel_disabled`).

    ``REPRO_NO_KERNEL=1`` forces the set-based paths process-wide;
    unset or ``0`` leaves the kernel on (the same 0/1 convention as the
    benchmark harness's ``REPRO_BENCH_JSON``).
    """
    return _ENABLED and os.environ.get("REPRO_NO_KERNEL", "") in ("", "0")


@contextmanager
def kernel_disabled():
    """Force the set-based engine paths (benchmarks and cross-validation).

    >>> from repro.engine.compiled import compile_spanner
    >>> engine = compile_spanner(".*x{a+}.*")
    >>> with kernel_disabled():
    ...     old = engine.mappings("baa")
    >>> engine.mappings("baa") == old
    True
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def flat_enabled() -> bool:
    """Whether the flat-table layer is active (see :func:`flat_disabled`).

    ``REPRO_NO_FLAT=1`` forces the dict kernel process-wide; unset or
    ``0`` leaves the flat tables on.  Orthogonal to
    :func:`kernel_enabled` — with the kernel off entirely, the flat
    layer never comes into play.
    """
    return _FLAT_ENABLED and os.environ.get("REPRO_NO_FLAT", "") in ("", "0")


@contextmanager
def flat_disabled():
    """Force the dict-kernel paths (benchmarks and cross-validation).

    >>> from repro.engine.compiled import compile_spanner
    >>> engine = compile_spanner(".*x{a+}.*")
    >>> with flat_disabled():
    ...     old = engine.mappings("baa")
    >>> engine.mappings("baa") == old
    True
    """
    global _FLAT_ENABLED
    previous = _FLAT_ENABLED
    _FLAT_ENABLED = False
    try:
        yield
    finally:
        _FLAT_ENABLED = previous


def iter_bits(mask: int):
    """The set bit indices of ``mask`` (lowest first)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class AlphabetClasses:
    """Character equivalence classes for a family of ``CharSet`` predicates.

    Two characters are equivalent iff every predicate classifies them
    identically — simulating on one is simulating on the other.  All
    characters mentioned by no predicate share the *residual* class
    (non-empty exactly because cofinite predicates exist, or trivially
    when the automaton reads nothing).

    >>> classes = AlphabetClasses([CharSet.of("ab"), CharSet.excluding(",")])
    >>> classes.classify("a") == classes.classify("b")
    True
    >>> classes.classify("z") == classes.residual
    True
    >>> classes.classify(",") in (classes.classify("a"), classes.residual)
    False
    """

    __slots__ = ("count", "residual", "representatives", "_class_of")

    def __init__(self, charsets) -> None:
        distinct = list(dict.fromkeys(charsets))
        mentioned = sorted({ch for cs in distinct for ch in cs.chars})
        by_signature: dict[tuple[bool, ...], int] = {}
        class_of: dict[str, int] = {}
        members: list[list[str]] = []
        for char in mentioned:
            signature = tuple(cs.contains(char) for cs in distinct)
            class_id = by_signature.setdefault(signature, len(by_signature))
            if class_id == len(members):
                members.append([])
            members[class_id].append(char)
            class_of[char] = class_id
        # The residual: contained exactly by the cofinite predicates.  Its
        # signature can coincide with a mentioned character's (e.g. a char
        # excluded by no predicate), in which case the classes merge.
        residual_signature = tuple(cs.negated for cs in distinct)
        self.residual = by_signature.setdefault(
            residual_signature, len(by_signature)
        )
        if self.residual == len(members):
            members.append([])
        self.count = len(by_signature)
        self._class_of = class_of
        fresh = CharSet.excluding(mentioned).witness()
        self.representatives = tuple(
            group[0] if group else fresh for group in members
        )

    @classmethod
    def from_parts(
        cls,
        class_of: dict[str, int],
        residual: int,
        count: int,
        representatives,
    ) -> "AlphabetClasses":
        """Rebuild a partition from its serialized parts (artifact loads).

        Bypasses the signature computation entirely — the parts were
        produced by a previous :meth:`__init__` and round-tripped through
        :mod:`repro.engine.artifact`.
        """
        self = cls.__new__(cls)
        self._class_of = dict(class_of)
        self.residual = residual
        self.count = count
        self.representatives = tuple(representatives)
        return self

    def classify(self, char: str) -> int:
        return self._class_of.get(char, self.residual)

    def intern(self, text: str) -> tuple[int, ...]:
        """The class-id sequence of a document (one pass, then cached
        upstream by :meth:`Kernel.intern`)."""
        class_of, residual = self._class_of, self.residual
        return tuple(class_of.get(char, residual) for char in text)


def _closure_masks(count: int, adjacency) -> tuple[int, ...]:
    """Per-state reachability masks over a free-move adjacency.

    ``adjacency[q]`` lists the states reachable in one free move; the
    result masks include ``q`` itself (reflexive-transitive closure).
    """
    masks = []
    for start in range(count):
        seen = 1 << start
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in adjacency[state]:
                bit = 1 << target
                if not seen & bit:
                    seen |= bit
                    frontier.append(target)
        masks.append(seen)
    return tuple(masks)


class Kernel:
    """Bitmask tables and lazy-DFA memos for one compiled automaton."""

    __slots__ = (
        "cva",
        "classes",
        "num_states",
        "free",
        "free_rev",
        "step",
        "step_rev",
        "delta",
        "delta_rev",
        "_interned",
        "_contexts",
        "_flat",
    )

    def __init__(self, cva: "CompiledVA") -> None:
        self.cva = cva
        count = cva.num_states
        self.num_states = count
        self.classes = AlphabetClasses(
            charset for _, charset, _ in cva.sym_edges
        )
        self.free = _closure_masks(count, cva.free_adjacency)
        self.free_rev = _closure_masks(count, cva.free_adjacency_reversed)
        step: list[tuple[int, ...]] = []
        step_rev: list[list[int]] = []
        for representative in self.classes.representatives:
            forward = []
            backward = [0] * count
            for state in range(count):
                mask = 0
                for target in cva.step(state, representative):
                    mask |= 1 << target
                    backward[target] |= 1 << state
                forward.append(mask)
            step.append(tuple(forward))
            step_rev.append(backward)
        self.step = tuple(step)
        self.step_rev = tuple(tuple(masks) for masks in step_rev)
        self.delta: dict[tuple[int, int], int] = {}
        self.delta_rev: dict[tuple[int, int], int] = {}
        self._interned: OrderedDict[tuple[int, int], tuple[str, tuple[int, ...]]]
        self._interned = OrderedDict()
        self._contexts: OrderedDict[tuple[frozenset, frozenset], SweepContext]
        self._contexts = OrderedDict()
        self._flat: FlatTables | None = None

    @classmethod
    def from_tables(
        cls,
        cva: "CompiledVA",
        classes: AlphabetClasses,
        free,
        free_rev,
        step,
        step_rev,
    ) -> "Kernel":
        """Rebuild a kernel from precomputed tables (artifact loads).

        The mask tables may be any integer-indexable sequences — in
        particular the zero-copy ``memoryview`` rows that
        :mod:`repro.engine.artifact` casts straight out of an mmap'd
        artifact file.  Memos start empty; they are per-process state.
        """
        self = cls.__new__(cls)
        self.cva = cva
        self.num_states = cva.num_states
        self.classes = classes
        self.free = free
        self.free_rev = free_rev
        self.step = step
        self.step_rev = step_rev
        self.delta = {}
        self.delta_rev = {}
        self._interned = OrderedDict()
        self._contexts = OrderedDict()
        self._flat = None
        return self

    # -- documents -------------------------------------------------------------

    def intern(self, text: str) -> tuple[int, ...]:
        """The (cached) class-id sequence of a document.

        Keyed by ``(len, hash)`` so keys stay O(1); the stored text is
        compared on hit, so a hash collision costs a re-intern, never a
        wrong answer.
        """
        key = (len(text), hash(text))
        entry = self._interned.get(key)
        if entry is not None and entry[0] == text:
            self._interned.move_to_end(key)
            return entry[1]
        classes = self.classes.intern(text)
        if len(self._interned) >= _INTERN_LIMIT:
            self._interned.popitem(last=False)
        self._interned[key] = (text, classes)
        return classes

    # -- free (operation-ignoring) sweeps ---------------------------------------

    def close(self, mask: int) -> int:
        """Free closure of a state mask (OR-fold of per-state masks)."""
        out = 0
        free = self.free
        while mask:  # iter_bits, inlined: this fold is the hot primitive
            low = mask & -mask
            out |= free[low.bit_length() - 1]
            mask ^= low
        return out

    def close_rev(self, mask: int) -> int:
        out = 0
        free_rev = self.free_rev
        while mask:
            low = mask & -mask
            out |= free_rev[low.bit_length() - 1]
            mask ^= low
        return out

    def delta_step(self, mask: int, class_id: int) -> int:
        """Lazy-DFA transition: letter step then free closure, memoised."""
        key = (mask, class_id)
        cached = self.delta.get(key)
        if cached is not None:
            return cached
        table = self.step[class_id]
        seeds = 0
        for state in iter_bits(mask):
            seeds |= table[state]
        result = self.close(seeds) if seeds else 0
        if len(self.delta) < DELTA_LIMIT:
            self.delta[key] = result
        return result

    def delta_rev_step(self, mask: int, class_id: int) -> int:
        """Backward transition: reverse letter step then reverse closure."""
        key = (mask, class_id)
        cached = self.delta_rev.get(key)
        if cached is not None:
            return cached
        table = self.step_rev[class_id]
        seeds = 0
        for state in iter_bits(mask):
            seeds |= table[state]
        result = self.close_rev(seeds) if seeds else 0
        if len(self.delta_rev) < DELTA_LIMIT:
            self.delta_rev[key] = result
        return result

    # -- pinned sweeps -----------------------------------------------------------

    def context(self, pinned: frozenset, nulls: frozenset) -> "SweepContext":
        """The (cached) sweep context for one pin partition."""
        key = (pinned, nulls)
        context = self._contexts.get(key)
        if context is not None:
            self._contexts.move_to_end(key)
            return context
        context = SweepContext(self, pinned, nulls)
        if len(self._contexts) >= _CONTEXT_LIMIT:
            self._contexts.popitem(last=False)
        self._contexts[key] = context
        return context

    # -- flat tables -------------------------------------------------------------

    def flat_or_none(self) -> "FlatTables | None":
        """The flat-table layer, or ``None`` inside :func:`flat_disabled`."""
        if not flat_enabled():
            return None
        if self._flat is None:
            self._flat = FlatTables(self)
        return self._flat

    def stats(self) -> dict[str, int]:
        """Memo sizes, for dashboards and the memory-bound docs."""
        flat = self._flat
        flat_states = 0
        if flat is not None:
            seen = {id(flat.dfa): flat.dfa, id(flat.dfa_rev): flat.dfa_rev}
            for ctx in self._contexts.values():
                if ctx.flat_dfa is not None:
                    seen[id(ctx.flat_dfa)] = ctx.flat_dfa
            flat_states = sum(len(dfa.masks) for dfa in seen.values())
        return {
            "classes": self.classes.count,
            "delta": len(self.delta),
            "delta_rev": len(self.delta_rev),
            "contexts": len(self._contexts),
            "context_delta": sum(
                len(ctx.delta)
                for ctx in self._contexts.values()
                if ctx.delta is not self.delta  # the no-pin context aliases it
            ),
            "interned": len(self._interned),
            "flat_states": flat_states,
        }


class SweepContext:
    """Kernel tables specialised to one pin partition ``(pinned, nulls)``.

    The *base* closure treats ε, operations of unconstrained variables,
    and opens of ⊥-pinned variables as free; closes of ⊥-pinned variables
    and every operation of a span-pinned variable are excluded — the
    latter re-enter only as *counted* edges at the positions where
    :class:`~repro.engine.oracle.Requirements` demands them (see
    :meth:`closure_counted`).  With no pins the context degenerates to
    the kernel's own free closure and shares its semantics (but keeps a
    separate memo).
    """

    __slots__ = (
        "kernel",
        "pinned",
        "nulls",
        "closure",
        "closure_rev",
        "delta",
        "flat_dfa",
        "flat_dfa_rev",
        "_op_edges",
    )

    def __init__(self, kernel: Kernel, pinned: frozenset, nulls: frozenset) -> None:
        self.kernel = kernel
        self.pinned = pinned
        self.nulls = nulls
        count = kernel.cva.num_states
        self._op_edges: dict[tuple[str, str], tuple[tuple[int, int], ...]] = {}
        #: The interned flat DFAs over this context's closure (forward and
        #: reverse), attached lazily by :meth:`FlatTables.context` /
        #: :meth:`FlatTables.context_rev` (``None`` until first use).
        self.flat_dfa: FlatDFA | None = None
        self.flat_dfa_rev: FlatDFA | None = None
        #: Reverse restricted closure — built lazily by
        #: :meth:`closure_rev_masks` (only backward co-acceptance sweeps
        #: need it).
        self.closure_rev: tuple[int, ...] | None = None
        if not pinned and not nulls:
            # No pins: the base closure IS the free closure, so share the
            # kernel's masks *and* its delta memo — the reachability index
            # and the unpinned eval sweep warm the same lazy DFA.
            self.closure = kernel.free
            self.closure_rev = kernel.free_rev
            self.delta: dict[tuple[int, int], int] = kernel.delta
            return
        self.closure = _closure_masks(count, self._adjacency())
        self.delta = {}

    def _adjacency(self) -> list[list[int]]:
        """The restricted free-move adjacency of this pin partition."""
        cva = self.kernel.cva
        pinned, nulls = self.pinned, self.nulls
        adjacency: list[list[int]] = [[] for _ in range(cva.num_states)]
        for state in range(cva.num_states):
            targets = adjacency[state]
            targets.extend(cva.eps[state])
            for variable, target in cva.opens[state]:
                if variable not in pinned:
                    # ⊥-pinned opens stay free: a dangling open leaves
                    # the variable unused (run-DAG semantics).
                    targets.append(target)
            for variable, target in cva.closes[state]:
                if variable not in pinned and variable not in nulls:
                    targets.append(target)
        return adjacency

    def closure_rev_masks(self) -> tuple[int, ...]:
        """Per-state *reverse* restricted closure masks (built lazily)."""
        masks = self.closure_rev
        if masks is None:
            adjacency = self._adjacency()
            reversed_adjacency: list[list[int]] = [[] for _ in adjacency]
            for source, targets in enumerate(adjacency):
                for target in targets:
                    reversed_adjacency[target].append(source)
            masks = _closure_masks(len(adjacency), reversed_adjacency)
            self.closure_rev = masks
        return masks

    # -- primitive steps ---------------------------------------------------------

    def close(self, mask: int) -> int:
        out = 0
        closure = self.closure
        while mask:  # iter_bits, inlined: this fold is the hot primitive
            low = mask & -mask
            out |= closure[low.bit_length() - 1]
            mask ^= low
        return out

    def letter(self, mask: int, class_id: int) -> int:
        """The raw letter step (no closure) — used before a counted closure."""
        table = self.kernel.step[class_id]
        seeds = 0
        while mask:
            low = mask & -mask
            seeds |= table[low.bit_length() - 1]
            mask ^= low
        return seeds

    def delta_step(self, mask: int, class_id: int) -> int:
        """Letter step then base closure, memoised per context."""
        key = (mask, class_id)
        cached = self.delta.get(key)
        if cached is not None:
            return cached
        seeds = self.letter(mask, class_id)
        result = self.close(seeds) if seeds else 0
        if len(self.delta) < DELTA_LIMIT:
            self.delta[key] = result
        return result

    # -- counted closures (positions with required operations) -------------------

    def op_edges(self, key: tuple[str, str]) -> tuple[tuple[int, int], ...]:
        """``(source_bit, target_bit)`` pairs for one required op key."""
        cached = self._op_edges.get(key)
        if cached is None:
            kind, variable = key
            cva = self.kernel.cva
            table = (
                cva.opens_by_variable if kind == "o" else cva.closes_by_variable
            )
            cached = tuple(
                (1 << source, 1 << target)
                for source, target in table.get(variable, ())
            )
            self._op_edges[key] = cached
        return cached

    def closure_counted(self, seeds: list[int], required: frozenset) -> list[int]:
        """Closure at a position with required ops, as per-count masks.

        ``seeds[c]`` holds the states that have performed ``c`` required
        operations; the result is the saturation under base-free moves
        (count unchanged) and required-op edges (count + 1), mirroring the
        set-based ``oracle._closure`` exactly.  Required ops fire level by
        level — counts only grow — so one pass over ``0..total`` suffices.
        """
        total = len(required)
        edges = [edge for key in required for edge in self.op_edges(key)]
        out = [0] * (total + 1)
        carry = 0
        for count in range(total + 1):
            mask = carry | (seeds[count] if count < len(seeds) else 0)
            if not mask:
                carry = 0
                continue
            closed = self.close(mask)
            out[count] = closed
            if count < total:
                carry = 0
                for source_bit, target_bit in edges:
                    if closed & source_bit:
                        carry |= target_bit
        return out

    # -- reverse primitives (backward co-acceptance sweeps) ----------------------

    def close_rev(self, mask: int) -> int:
        """Reverse restricted closure fold (mirror of :meth:`close`)."""
        out = 0
        closure = self.closure_rev or self.closure_rev_masks()
        while mask:
            low = mask & -mask
            out |= closure[low.bit_length() - 1]
            mask ^= low
        return out

    def letter_rev(self, mask: int, class_id: int) -> int:
        """The raw reverse letter step: sources that step into ``mask``."""
        table = self.kernel.step_rev[class_id]
        seeds = 0
        while mask:
            low = mask & -mask
            seeds |= table[low.bit_length() - 1]
            mask ^= low
        return seeds

    def closure_counted_rev(self, seeds: list[int], required: frozenset) -> list[int]:
        """Backward counted closure — :meth:`closure_counted` mirrored.

        ``seeds[c]`` holds states from which a *suffix* run has ``c``
        required operations behind it; op edges are traversed backwards
        (target → source) under the reverse restricted closure.  A
        reversed path from a seed back to a state at the top count is
        exactly a forward path firing all required ops, so intersecting
        the top level with a forward mask answers "can any of these
        states fire the ops here and then complete?".
        """
        total = len(required)
        edges = [edge for key in required for edge in self.op_edges(key)]
        out = [0] * (total + 1)
        carry = 0
        for count in range(total + 1):
            mask = carry | (seeds[count] if count < len(seeds) else 0)
            if not mask:
                carry = 0
                continue
            closed = self.close_rev(mask)
            out[count] = closed
            if count < total:
                carry = 0
                for source_bit, target_bit in edges:
                    if closed & target_bit:  # reversed traversal
                        carry |= source_bit
        return out


class _TranslateTable(dict):
    """``str.translate`` table mapping code points to class-id characters.

    Unmentioned code points default to the residual class; the miss is
    memoised so repeated exotic characters cost one dict hit like
    everything else.
    """

    __slots__ = ("residual",)

    def __missing__(self, code: int) -> str:
        value = self.residual
        self[code] = value
        return value


class FlatDFA:
    """An interned lazy DFA over one closure: integer state ids, flat rows.

    The dict kernel memoises ``(mask, class) → mask``; here each distinct
    state mask is interned to a small integer id and the memo is one
    contiguous class-indexed ``array('i')`` row per id (``-1`` =
    unexplored, id ``0`` = the dead state).  The hot sweep loop is then
    ``row[class_id]`` — two indexed loads per character, no tuple keys,
    no big-int hashing.  Exploration still goes through the mask tables,
    so semantics are exactly the dict kernel's.
    """

    __slots__ = (
        "closure",
        "step_flat",
        "num_states",
        "num_classes",
        "masks",
        "ids",
        "rows",
        "_blank",
    )

    def __init__(self, closure, step_flat, num_states: int, num_classes: int) -> None:
        #: Per-state closure masks this DFA saturates with (the kernel's
        #: free closure, its reverse, or a pin context's restriction).
        self.closure = closure
        #: Class-major flat letter table: ``step_flat[class_id * n + q]``.
        self.step_flat = step_flat
        self.num_states = num_states
        self.num_classes = num_classes
        self.masks: list[int] = [0]
        self.ids: dict[int, int] = {0: 0}
        # The dead state loops to itself on every class, so a dead sweep
        # short-circuits without ever exploring.
        self.rows: list[array] = [array("i", [0]) * num_classes]
        self._blank = array("i", [-1]) * num_classes

    def intern(self, mask: int) -> int:
        """The state id of ``mask`` (assigning one on first sight)."""
        sid = self.ids.get(mask)
        if sid is None:
            if len(self.masks) >= FLAT_STATE_LIMIT:
                raise FlatOverflow(
                    f"flat DFA exceeded {FLAT_STATE_LIMIT} interned states"
                )
            sid = len(self.masks)
            self.ids[mask] = sid
            self.masks.append(mask)
            self.rows.append(self._blank[:])
        return sid

    def explore(self, sid: int, class_id: int) -> int:
        """Resolve one unexplored transition (letter step then closure)."""
        mask = self.masks[sid]
        step = self.step_flat
        base = class_id * self.num_states
        seeds = 0
        while mask:
            low = mask & -mask
            seeds |= step[base + low.bit_length() - 1]
            mask ^= low
        out = 0
        closure = self.closure
        while seeds:
            low = seeds & -seeds
            out |= closure[low.bit_length() - 1]
            seeds ^= low
        target = self.intern(out)
        self.rows[sid][class_id] = target
        return target


class FlatTables:
    """The flat-table layer of one kernel: interned documents + flat DFAs.

    Built lazily by :meth:`Kernel.flat_or_none` and shared exactly like
    the kernel itself — per :class:`~repro.engine.tables.CompiledVA`,
    across every document and oracle call.  Holds the forward/backward
    document-index DFAs; pinned sweep contexts get their own
    :class:`FlatDFA` on first use (attached to the cached
    :class:`SweepContext`, so they obey the same LRU lifetime).
    """

    __slots__ = (
        "kernel",
        "classes",
        "num_states",
        "num_classes",
        "step_flat",
        "step_rev_flat",
        "dfa",
        "dfa_rev",
        "_translate",
        "_np_table",
        "_interned",
        "_vector",
    )

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.classes = kernel.classes
        self.num_states = kernel.num_states
        self.num_classes = kernel.classes.count
        step_flat: list[int] = []
        for row in kernel.step:
            step_flat.extend(row)
        self.step_flat = step_flat
        step_rev_flat: list[int] = []
        for row in kernel.step_rev:
            step_rev_flat.extend(row)
        self.step_rev_flat = step_rev_flat
        self.dfa = FlatDFA(kernel.free, step_flat, self.num_states, self.num_classes)
        self.dfa_rev = FlatDFA(
            kernel.free_rev, step_rev_flat, self.num_states, self.num_classes
        )
        self._translate: _TranslateTable | None = None
        self._np_table = None
        self._interned: OrderedDict[tuple[int, int], tuple[str, bytes]]
        self._interned = OrderedDict()
        #: The numpy vector layer over these tables, attached lazily by
        #: :func:`repro.engine.vector.vector_tables` (``None`` until a
        #: batch sweep first asks for it).
        self._vector = None

    # -- documents -------------------------------------------------------------

    def intern(self, text: str):
        """The (cached) class-id sequence of a document as ``bytes``.

        One C-level ``str.translate`` pass (or a vectorised numpy table
        lookup for long documents) instead of the per-character dict walk
        of :meth:`AlphabetClasses.intern`.  Automata with more than 256
        alphabet classes fall back to the kernel's tuple interning —
        the sweeps index either representation identically.
        """
        if self.num_classes > 256:
            return self.kernel.intern(text)
        key = (len(text), hash(text))
        entry = self._interned.get(key)
        if entry is not None and entry[0] == text:
            self._interned.move_to_end(key)
            return entry[1]
        ids = self._intern_now(text)
        if len(self._interned) >= _INTERN_LIMIT:
            self._interned.popitem(last=False)
        self._interned[key] = (text, ids)
        return ids

    def _intern_now(self, text: str) -> bytes:
        if len(text) >= _NUMPY_INTERN_MIN and numpy_or_none() is not None:
            return self._intern_numpy(text)
        table = self._translate
        if table is None:
            table = _TranslateTable(
                (ord(char), chr(class_id))
                for char, class_id in self.classes._class_of.items()
            )
            table.residual = chr(self.classes.residual)
            self._translate = table
        return text.translate(table).encode("latin-1")

    def _intern_numpy(self, text: str) -> bytes:
        table = self._np_table
        if table is None:
            class_of = self.classes._class_of
            size = max((ord(char) for char in class_of), default=0) + 2
            table = _np.full(size, self.classes.residual, dtype=_np.uint8)
            for char, class_id in class_of.items():
                table[ord(char)] = class_id
            self._np_table = table
        codes = _np.frombuffer(text.encode("utf-32-le"), dtype=_np.uint32)
        # Code points past the table (all unmentioned) clip onto the last
        # slot, which is one past the highest mentioned code point and
        # therefore always residual.
        return table[_np.minimum(codes, len(table) - 1)].tobytes()

    # -- sweep contexts ----------------------------------------------------------

    def context(self, context: SweepContext) -> FlatDFA:
        """The flat DFA of one sweep context (built on first use).

        The no-pin context shares the forward document-index DFA — the
        reachability sweep and the unpinned eval sweep warm the same
        interned states, mirroring the dict layer's shared delta memo.
        """
        dfa = context.flat_dfa
        if dfa is None:
            if context.closure is self.kernel.free:
                dfa = self.dfa
            else:
                dfa = FlatDFA(
                    context.closure,
                    self.step_flat,
                    self.num_states,
                    self.num_classes,
                )
            context.flat_dfa = dfa
        return dfa

    def context_rev(self, context: SweepContext) -> FlatDFA:
        """The *reverse* flat DFA of one sweep context (built on first use).

        Drives the backward co-acceptance sweep of
        :class:`~repro.engine.oracle.FlatNodeSweep`; the no-pin context
        shares the document-index coreach DFA.
        """
        dfa = context.flat_dfa_rev
        if dfa is None:
            closure_rev = context.closure_rev_masks()
            if closure_rev is self.kernel.free_rev:
                dfa = self.dfa_rev
            else:
                dfa = FlatDFA(
                    closure_rev,
                    self.step_rev_flat,
                    self.num_states,
                    self.num_classes,
                )
            context.flat_dfa_rev = dfa
        return dfa
