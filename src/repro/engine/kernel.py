"""Bitmask kernel: alphabet compression + lazy-DFA state sets.

The set-based sweeps in :mod:`repro.engine.tables` and
:mod:`repro.engine.oracle` simulate the NFA as Python sets of tuples —
per-character dict lookups, ``frozenset`` churn, and a worklist loop at
every document position.  This module applies two classic regex-engine
techniques (the machinery behind RE2-style lazy DFAs) to variable-set
automata:

* **Alphabet compression** (:class:`AlphabetClasses`) — characters are
  partitioned once per :class:`~repro.engine.tables.CompiledVA` into
  equivalence classes by which ``Sym`` edges they enable.  Cofinite
  charsets (``Σ - S``) contribute a *residual* class standing for every
  character no predicate mentions.  Each document is interned once into a
  class-id sequence, after which the simulation never touches characters.

* **Bitmask state sets** (:class:`Kernel`) — a state set is a Python int
  with bit ``q`` for state ``q``.  Free closure (ε and variable
  operations treated as free moves) is precomputed per state as a mask,
  so closing a set is an OR-fold instead of a worklist loop; the letter
  step is a per-class per-state target-mask table (plus its transpose,
  used by the backward co-reachability sweep).

* **A lazy DFA** — ``delta[(mask, class_id)] → mask`` memoises the
  composite "letter step then closure" transition on demand.  Repeated
  positions (the common case in CSV/log text) cost one dict hit.  The
  memo lives on the kernel, which lives on the ``CompiledVA``, so it is
  shared by every document a :class:`~repro.engine.compiled.CompiledSpanner`
  evaluates — and, through the worker-resident engine of
  :mod:`repro.service.evaluate`, by the whole corpus batch a worker
  processes.  Each memo is bounded by :data:`DELTA_LIMIT` entries;
  once full, transitions are still computed, just no longer recorded.

Pinned sweeps (the ``Eval`` oracle and enumeration nodes) run over a
:class:`SweepContext`: the same machinery with the closure graph
restricted by the pin context — operations of span-pinned variables only
fire where required, closes of ⊥-pinned variables never fire — and a
per-context delta memo.  Contexts are cached per kernel, so sibling
recursion nodes and repeated oracle calls share closures and memos.

The kernel accelerates the *sequential* sweep (Theorem 5.7) and the
op-free reachability index; the general FPT sweep (Theorem 5.10) keeps
the set-based representation — its states carry performed-sets and
status vectors that do not pack into per-state bits.  The set-based
sequential path also remains, both as the cross-validation baseline and
behind :func:`kernel_disabled` for old-vs-new benchmarking.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING

from repro.alphabet import CharSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tables imports us)
    from repro.engine.tables import CompiledVA

#: Per-memo bound on lazy-DFA entries.  Each entry is two small ints and a
#: mask; the bound caps a kernel's memory at a few MB even on adversarial
#: document streams (see docs/api.md).
DELTA_LIMIT = 1 << 18

#: Interned class-id sequences kept per kernel (LRU, keyed by
#: ``(len(text), hash(text))`` with the text verified on hit).
_INTERN_LIMIT = 64

#: Pin contexts kept per kernel (LRU).  Enumeration revisits the same
#: (pinned, nulls) partitions at every recursion depth and across
#: documents, so this hit rate is high.
_CONTEXT_LIMIT = 256

_ENABLED = True


def kernel_enabled() -> bool:
    """Whether the bitmask kernel is active (see :func:`kernel_disabled`).

    ``REPRO_NO_KERNEL=1`` forces the set-based paths process-wide;
    unset or ``0`` leaves the kernel on (the same 0/1 convention as the
    benchmark harness's ``REPRO_BENCH_JSON``).
    """
    return _ENABLED and os.environ.get("REPRO_NO_KERNEL", "") in ("", "0")


@contextmanager
def kernel_disabled():
    """Force the set-based engine paths (benchmarks and cross-validation).

    >>> from repro.engine.compiled import compile_spanner
    >>> engine = compile_spanner(".*x{a+}.*")
    >>> with kernel_disabled():
    ...     old = engine.mappings("baa")
    >>> engine.mappings("baa") == old
    True
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def iter_bits(mask: int):
    """The set bit indices of ``mask`` (lowest first)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class AlphabetClasses:
    """Character equivalence classes for a family of ``CharSet`` predicates.

    Two characters are equivalent iff every predicate classifies them
    identically — simulating on one is simulating on the other.  All
    characters mentioned by no predicate share the *residual* class
    (non-empty exactly because cofinite predicates exist, or trivially
    when the automaton reads nothing).

    >>> classes = AlphabetClasses([CharSet.of("ab"), CharSet.excluding(",")])
    >>> classes.classify("a") == classes.classify("b")
    True
    >>> classes.classify("z") == classes.residual
    True
    >>> classes.classify(",") in (classes.classify("a"), classes.residual)
    False
    """

    __slots__ = ("count", "residual", "representatives", "_class_of")

    def __init__(self, charsets) -> None:
        distinct = list(dict.fromkeys(charsets))
        mentioned = sorted({ch for cs in distinct for ch in cs.chars})
        by_signature: dict[tuple[bool, ...], int] = {}
        class_of: dict[str, int] = {}
        members: list[list[str]] = []
        for char in mentioned:
            signature = tuple(cs.contains(char) for cs in distinct)
            class_id = by_signature.setdefault(signature, len(by_signature))
            if class_id == len(members):
                members.append([])
            members[class_id].append(char)
            class_of[char] = class_id
        # The residual: contained exactly by the cofinite predicates.  Its
        # signature can coincide with a mentioned character's (e.g. a char
        # excluded by no predicate), in which case the classes merge.
        residual_signature = tuple(cs.negated for cs in distinct)
        self.residual = by_signature.setdefault(
            residual_signature, len(by_signature)
        )
        if self.residual == len(members):
            members.append([])
        self.count = len(by_signature)
        self._class_of = class_of
        fresh = CharSet.excluding(mentioned).witness()
        self.representatives = tuple(
            group[0] if group else fresh for group in members
        )

    def classify(self, char: str) -> int:
        return self._class_of.get(char, self.residual)

    def intern(self, text: str) -> tuple[int, ...]:
        """The class-id sequence of a document (one pass, then cached
        upstream by :meth:`Kernel.intern`)."""
        class_of, residual = self._class_of, self.residual
        return tuple(class_of.get(char, residual) for char in text)


def _closure_masks(count: int, adjacency) -> tuple[int, ...]:
    """Per-state reachability masks over a free-move adjacency.

    ``adjacency[q]`` lists the states reachable in one free move; the
    result masks include ``q`` itself (reflexive-transitive closure).
    """
    masks = []
    for start in range(count):
        seen = 1 << start
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for target in adjacency[state]:
                bit = 1 << target
                if not seen & bit:
                    seen |= bit
                    frontier.append(target)
        masks.append(seen)
    return tuple(masks)


class Kernel:
    """Bitmask tables and lazy-DFA memos for one compiled automaton."""

    __slots__ = (
        "cva",
        "classes",
        "num_states",
        "free",
        "free_rev",
        "step",
        "step_rev",
        "delta",
        "delta_rev",
        "_interned",
        "_contexts",
    )

    def __init__(self, cva: "CompiledVA") -> None:
        self.cva = cva
        count = cva.num_states
        self.num_states = count
        self.classes = AlphabetClasses(
            charset for _, charset, _ in cva.sym_edges
        )
        self.free = _closure_masks(count, cva.free_adjacency)
        self.free_rev = _closure_masks(count, cva.free_adjacency_reversed)
        step: list[tuple[int, ...]] = []
        step_rev: list[list[int]] = []
        for representative in self.classes.representatives:
            forward = []
            backward = [0] * count
            for state in range(count):
                mask = 0
                for target in cva.step(state, representative):
                    mask |= 1 << target
                    backward[target] |= 1 << state
                forward.append(mask)
            step.append(tuple(forward))
            step_rev.append(backward)
        self.step = tuple(step)
        self.step_rev = tuple(tuple(masks) for masks in step_rev)
        self.delta: dict[tuple[int, int], int] = {}
        self.delta_rev: dict[tuple[int, int], int] = {}
        self._interned: OrderedDict[tuple[int, int], tuple[str, tuple[int, ...]]]
        self._interned = OrderedDict()
        self._contexts: OrderedDict[tuple[frozenset, frozenset], SweepContext]
        self._contexts = OrderedDict()

    # -- documents -------------------------------------------------------------

    def intern(self, text: str) -> tuple[int, ...]:
        """The (cached) class-id sequence of a document.

        Keyed by ``(len, hash)`` so keys stay O(1); the stored text is
        compared on hit, so a hash collision costs a re-intern, never a
        wrong answer.
        """
        key = (len(text), hash(text))
        entry = self._interned.get(key)
        if entry is not None and entry[0] == text:
            self._interned.move_to_end(key)
            return entry[1]
        classes = self.classes.intern(text)
        if len(self._interned) >= _INTERN_LIMIT:
            self._interned.popitem(last=False)
        self._interned[key] = (text, classes)
        return classes

    # -- free (operation-ignoring) sweeps ---------------------------------------

    def close(self, mask: int) -> int:
        """Free closure of a state mask (OR-fold of per-state masks)."""
        out = 0
        free = self.free
        for state in iter_bits(mask):
            out |= free[state]
        return out

    def close_rev(self, mask: int) -> int:
        out = 0
        free_rev = self.free_rev
        for state in iter_bits(mask):
            out |= free_rev[state]
        return out

    def delta_step(self, mask: int, class_id: int) -> int:
        """Lazy-DFA transition: letter step then free closure, memoised."""
        key = (mask, class_id)
        cached = self.delta.get(key)
        if cached is not None:
            return cached
        table = self.step[class_id]
        seeds = 0
        for state in iter_bits(mask):
            seeds |= table[state]
        result = self.close(seeds) if seeds else 0
        if len(self.delta) < DELTA_LIMIT:
            self.delta[key] = result
        return result

    def delta_rev_step(self, mask: int, class_id: int) -> int:
        """Backward transition: reverse letter step then reverse closure."""
        key = (mask, class_id)
        cached = self.delta_rev.get(key)
        if cached is not None:
            return cached
        table = self.step_rev[class_id]
        seeds = 0
        for state in iter_bits(mask):
            seeds |= table[state]
        result = self.close_rev(seeds) if seeds else 0
        if len(self.delta_rev) < DELTA_LIMIT:
            self.delta_rev[key] = result
        return result

    # -- pinned sweeps -----------------------------------------------------------

    def context(self, pinned: frozenset, nulls: frozenset) -> "SweepContext":
        """The (cached) sweep context for one pin partition."""
        key = (pinned, nulls)
        context = self._contexts.get(key)
        if context is not None:
            self._contexts.move_to_end(key)
            return context
        context = SweepContext(self, pinned, nulls)
        if len(self._contexts) >= _CONTEXT_LIMIT:
            self._contexts.popitem(last=False)
        self._contexts[key] = context
        return context

    def stats(self) -> dict[str, int]:
        """Memo sizes, for dashboards and the memory-bound docs."""
        return {
            "classes": self.classes.count,
            "delta": len(self.delta),
            "delta_rev": len(self.delta_rev),
            "contexts": len(self._contexts),
            "context_delta": sum(
                len(ctx.delta)
                for ctx in self._contexts.values()
                if ctx.delta is not self.delta  # the no-pin context aliases it
            ),
            "interned": len(self._interned),
        }


class SweepContext:
    """Kernel tables specialised to one pin partition ``(pinned, nulls)``.

    The *base* closure treats ε, operations of unconstrained variables,
    and opens of ⊥-pinned variables as free; closes of ⊥-pinned variables
    and every operation of a span-pinned variable are excluded — the
    latter re-enter only as *counted* edges at the positions where
    :class:`~repro.engine.oracle.Requirements` demands them (see
    :meth:`closure_counted`).  With no pins the context degenerates to
    the kernel's own free closure and shares its semantics (but keeps a
    separate memo).
    """

    __slots__ = ("kernel", "pinned", "nulls", "closure", "delta", "_op_edges")

    def __init__(self, kernel: Kernel, pinned: frozenset, nulls: frozenset) -> None:
        self.kernel = kernel
        self.pinned = pinned
        self.nulls = nulls
        cva = kernel.cva
        count = cva.num_states
        self._op_edges: dict[tuple[str, str], tuple[tuple[int, int], ...]] = {}
        if not pinned and not nulls:
            # No pins: the base closure IS the free closure, so share the
            # kernel's masks *and* its delta memo — the reachability index
            # and the unpinned eval sweep warm the same lazy DFA.
            self.closure = kernel.free
            self.delta: dict[tuple[int, int], int] = kernel.delta
            return
        adjacency: list[list[int]] = [[] for _ in range(count)]
        for state in range(count):
            targets = adjacency[state]
            targets.extend(cva.eps[state])
            for variable, target in cva.opens[state]:
                if variable not in pinned:
                    # ⊥-pinned opens stay free: a dangling open leaves
                    # the variable unused (run-DAG semantics).
                    targets.append(target)
            for variable, target in cva.closes[state]:
                if variable not in pinned and variable not in nulls:
                    targets.append(target)
        self.closure = _closure_masks(count, adjacency)
        self.delta = {}

    # -- primitive steps ---------------------------------------------------------

    def close(self, mask: int) -> int:
        out = 0
        closure = self.closure
        for state in iter_bits(mask):
            out |= closure[state]
        return out

    def letter(self, mask: int, class_id: int) -> int:
        """The raw letter step (no closure) — used before a counted closure."""
        table = self.kernel.step[class_id]
        seeds = 0
        for state in iter_bits(mask):
            seeds |= table[state]
        return seeds

    def delta_step(self, mask: int, class_id: int) -> int:
        """Letter step then base closure, memoised per context."""
        key = (mask, class_id)
        cached = self.delta.get(key)
        if cached is not None:
            return cached
        seeds = self.letter(mask, class_id)
        result = self.close(seeds) if seeds else 0
        if len(self.delta) < DELTA_LIMIT:
            self.delta[key] = result
        return result

    # -- counted closures (positions with required operations) -------------------

    def op_edges(self, key: tuple[str, str]) -> tuple[tuple[int, int], ...]:
        """``(source_bit, target_bit)`` pairs for one required op key."""
        cached = self._op_edges.get(key)
        if cached is None:
            kind, variable = key
            cva = self.kernel.cva
            table = (
                cva.opens_by_variable if kind == "o" else cva.closes_by_variable
            )
            cached = tuple(
                (1 << source, 1 << target)
                for source, target in table.get(variable, ())
            )
            self._op_edges[key] = cached
        return cached

    def closure_counted(self, seeds: list[int], required: frozenset) -> list[int]:
        """Closure at a position with required ops, as per-count masks.

        ``seeds[c]`` holds the states that have performed ``c`` required
        operations; the result is the saturation under base-free moves
        (count unchanged) and required-op edges (count + 1), mirroring the
        set-based ``oracle._closure`` exactly.  Required ops fire level by
        level — counts only grow — so one pass over ``0..total`` suffices.
        """
        total = len(required)
        edges = [edge for key in required for edge in self.op_edges(key)]
        out = [0] * (total + 1)
        carry = 0
        for count in range(total + 1):
            mask = carry | (seeds[count] if count < len(seeds) else 0)
            if not mask:
                carry = 0
                continue
            closed = self.close(mask)
            out[count] = closed
            if count < total:
                carry = 0
                for source_bit, target_bit in edges:
                    if closed & source_bit:
                        carry |= target_bit
        return out
