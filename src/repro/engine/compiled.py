"""The compiled spanner: pruned enumeration, memoised Eval, batch evaluation.

:func:`compile_spanner` accepts concrete RGX syntax, an AST, an extraction
:class:`~repro.rules.rule.Rule`, a VA, an existing
:class:`~repro.spanner.Spanner`, or a prepared
:class:`~repro.plan.Plan` and returns a reusable :class:`CompiledSpanner`.
Every source is routed through the pass-based compilation planner
(:mod:`repro.plan`): the front-end normalises it to a VA, the pass
pipeline optimises it (ε-elimination, trimming, predicate fusion,
sequentialisation — ``opt_level`` picks the pipeline), and the engine
compiles the *planned* automaton.  Compilation work (the plan, transition
tables, the sequentiality check) happens once; per-document work (the
reachability index) is cached so repeated evaluation of the same document
— the serving pattern the batch API targets — pays for it once.

Enumeration follows Algorithm 2 exactly, with two engine upgrades:

* candidate spans come from the document index's reachability pruning
  instead of the full ``O(|d|²)`` span list, preserving the seed's output
  order on the surviving candidates;
* the oracle is a per-node :class:`~repro.engine.oracle.NodeSweep` that
  shares sweep prefixes across sibling branches (sequential automata), or
  a compiled full sweep otherwise.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Iterator, Sequence

from repro.automata.fingerprint import va_fingerprint
from repro.automata.va import VA
from repro.engine.oracle import (
    GeneralNode,
    eval_compiled,
    node_sweep,
)
from repro.engine.tables import CompiledVA, DocumentIndex, compile_va
from repro.engine.vector import batch_accept, batch_index
from repro.plan import Plan, plan as build_plan
from repro.spans.document import Document, as_text
from repro.spans.mapping import (
    NULL,
    ExtendedMapping,
    Mapping,
    Variable,
)
from repro.spans.span import Span

#: Per-spanner bound on cached document indexes / verdicts (LRU).  Cache
#: keys are ``(len(text), hash(text))``-based so an entry's key stays O(1)
#: regardless of document size.
_DOCUMENT_CACHE_LIMIT = 64
_VERDICT_CACHE_LIMIT = 4096


class CompiledSpanner:
    """A spanner compiled for repeated, high-throughput evaluation.

    Built either directly from an automaton (the worker-process path —
    the automaton is then assumed to be planned already) or from a
    :class:`~repro.plan.Plan`, in which case the engine runs on the
    plan's optimised automaton while classification questions
    (:attr:`is_sequential`) answer about the *source*.
    """

    def __init__(
        self,
        automaton: VA | None = None,
        expression=None,
        plan: "Plan | None" = None,
        source_sequential: bool | None = None,
    ) -> None:
        if plan is not None:
            automaton = plan.automaton
            if expression is None:
                expression = plan.source_expression
        if automaton is None:
            raise TypeError("CompiledSpanner needs an automaton or a plan")
        self._va = automaton
        self._cva: CompiledVA = compile_va(automaton)
        self._expression = expression
        self._plan = plan
        #: Source-classification override for plan-less engines rebuilt
        #: from serialized artifacts (the plan itself is not persisted).
        self._source_sequential = source_sequential
        self._fingerprint: str | None = None
        # The per-spanner LRU caches are mutated under this lock so one
        # engine can serve concurrent threads (the async server's
        # in-process executor).  Index/verdict *computation* happens
        # outside the lock; the kernel's own memos are plain dicts whose
        # check-then-insert races only duplicate deterministic work.
        self._lock = threading.Lock()
        self._indexes: OrderedDict[tuple[int, int], DocumentIndex] = OrderedDict()
        self._verdicts: OrderedDict[tuple, bool] = OrderedDict()
        self._index_hits = 0
        self._index_misses = 0
        self._verdict_hits = 0
        self._verdict_misses = 0

    # -- inspection ------------------------------------------------------------

    @property
    def automaton(self) -> VA:
        """The (planned) automaton the engine evaluates."""
        return self._va

    @property
    def plan(self) -> "Plan | None":
        """The compilation plan this engine came from (``None`` when built
        directly from an automaton, e.g. inside a worker process)."""
        return self._plan

    @property
    def expression(self):
        """The source RGX, when compiled from one."""
        return self._expression

    @property
    def tables(self) -> CompiledVA:
        """The underlying transition tables (shared, cached per VA)."""
        return self._cva

    @property
    def variables(self) -> frozenset[Variable]:
        return self._cva.variables

    @property
    def fingerprint(self) -> str:
        """The structural digest of the automaton the engine runs.

        Identical to :attr:`repro.plan.Plan.fingerprint` when the engine
        came from a plan — both digest the post-optimisation automaton —
        and computable even for worker-built engines that carry no plan.

        >>> engine = compile_spanner("x{a}|x{a}")
        >>> engine.fingerprint == compile_spanner("x{a}").fingerprint
        True
        """
        if self._fingerprint is None:
            self._fingerprint = va_fingerprint(self._va)
        return self._fingerprint

    def kernel_stats(self) -> dict[str, int]:
        """Memo sizes of the shared bitmask kernel (lazy-DFA entries,
        alphabet classes, sweep contexts) — a live view of the state every
        document this engine evaluates shares.  Forces the kernel build.

        >>> engine = compile_spanner(".*x{a+}.*")
        >>> _ = engine.mappings("baa")
        >>> engine.kernel_stats()["classes"] >= 2
        True
        """
        return self._cva.kernel.stats()

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/size counters of the per-spanner LRU caches.

        ``indexes`` counts :meth:`index` lookups (one per evaluated
        document), ``verdicts`` counts memoised ``Eval`` calls — the
        counters behind the CLI's ``--stats`` and the server's
        ``/metrics``.

        >>> engine = compile_spanner(".*x{a+}.*")
        >>> _ = engine.mappings("baa"); _ = engine.mappings("baa")
        >>> stats = engine.cache_stats()
        >>> stats["index_misses"], stats["index_hits"] >= 1
        (1, True)
        """
        with self._lock:
            return {
                "index_hits": self._index_hits,
                "index_misses": self._index_misses,
                "index_size": len(self._indexes),
                "index_capacity": _DOCUMENT_CACHE_LIMIT,
                "verdict_hits": self._verdict_hits,
                "verdict_misses": self._verdict_misses,
                "verdict_size": len(self._verdicts),
                "verdict_capacity": _VERDICT_CACHE_LIMIT,
            }

    @property
    def is_sequential(self) -> bool:
        """Fragment membership of the *source* (Theorem 5.7's condition).

        Planning may have sequentialised the automaton the engine sweeps
        (so a ``False`` here can still enjoy the polynomial sweep); the
        running automaton's property is ``tables.is_sequential``.
        """
        if self._plan is not None:
            return self._plan.source_sequential
        if self._source_sequential is not None:
            return self._source_sequential
        return self._cva.is_sequential

    # -- per-document infrastructure --------------------------------------------

    def index(self, document: "Document | str") -> DocumentIndex:
        """The (cached, LRU) reachability index of one document.

        The key is ``(len(text), hash(text))`` — O(1) memory per entry —
        and the stored index's own text is compared on hit, so a hash
        collision costs a rebuild, never a wrong index.
        """
        text = as_text(document)
        key = (len(text), hash(text))
        with self._lock:
            index = self._indexes.get(key)
            if index is not None and index.text == text:
                self._indexes.move_to_end(key)
                self._index_hits += 1
                return index
        built = DocumentIndex(self._cva, text)  # heavy: outside the lock
        with self._lock:
            self._index_misses += 1
            current = self._indexes.get(key)
            if current is not None and current.text == text:
                return current  # another thread built it first
            if current is None and len(self._indexes) >= _DOCUMENT_CACHE_LIMIT:
                self._indexes.popitem(last=False)
            self._indexes[key] = built
        return built

    def index_many(self, documents: "Sequence[Document | str]") -> list[DocumentIndex]:
        """Reachability indexes for a batch, built in one lockstep sweep.

        Cache-equivalent to calling :meth:`index` per document — hits
        and misses count identically, misses land in the same LRU — but
        misses are swept together through
        :func:`repro.engine.vector.batch_index` when the vector layer is
        available (falling back to per-document builds when not).  On
        sequential automata the batch sweep's final states additionally
        pre-warm the NonEmp verdict cache, so a following
        :meth:`enumerate` pays no extra eval sweep.
        """
        texts = [as_text(document) for document in documents]
        out: list[DocumentIndex | None] = [None] * len(texts)
        pending: OrderedDict[str, list[int]] = OrderedDict()
        with self._lock:
            for position, text in enumerate(texts):
                key = (len(text), hash(text))
                index = self._indexes.get(key)
                if index is not None and index.text == text:
                    self._indexes.move_to_end(key)
                    self._index_hits += 1
                    out[position] = index
                else:
                    pending.setdefault(text, []).append(position)
        if not pending:
            return out
        miss_texts = list(pending)
        built = batch_index(self._cva, miss_texts)
        if built is None:
            built = [DocumentIndex(self._cva, text) for text in miss_texts]
        empty_key = frozenset()
        sequential = self._cva.is_sequential
        final = self._cva.final
        with self._lock:
            for text, index in zip(miss_texts, built):
                self._index_misses += 1
                key = (len(text), hash(text))
                current = self._indexes.get(key)
                if current is not None and current.text == text:
                    index = current  # another thread built it first
                else:
                    if current is None and len(self._indexes) >= _DOCUMENT_CACHE_LIMIT:
                        self._indexes.popitem(last=False)
                    self._indexes[key] = index
                if sequential and index._reach_masks is not None:
                    # The forward sweep's last state already answers NonEmp
                    # (the unpinned sequential eval walks the same DFA).
                    verdict_key = (len(text), hash(text), empty_key)
                    if verdict_key not in self._verdicts:
                        if len(self._verdicts) >= _VERDICT_CACHE_LIMIT:
                            self._verdicts.popitem(last=False)
                        self._verdicts[verdict_key] = bool(
                            (index._reach_masks[-1] >> final) & 1
                        )
                for position in pending[text]:
                    out[position] = index
        return out

    # -- decision problems -------------------------------------------------------

    def eval(self, document: "Document | str", pinned: ExtendedMapping) -> bool:
        """Memoised ``Eval``: verdicts keyed on the document digest and the
        frozen extended mapping (LRU-bounded).

        The document key is ``(len(text), hash(text))`` so entries never
        retain the document itself — the point of the scheme — which
        means a 64-bit hash collision between two same-length documents
        would alias their verdicts.  Unlike :meth:`index` there is no
        stored text to verify against; the risk is accepted as
        negligible (siphash collisions at ~2⁻⁶⁴ per candidate pair)
        in exchange for O(1) memory per cached verdict.
        """
        text = as_text(document)
        key = (len(text), hash(text), frozenset(pinned.items()))
        with self._lock:
            verdict = self._verdicts.get(key)
            if verdict is not None:
                self._verdicts.move_to_end(key)
                self._verdict_hits += 1
                return verdict
        verdict = eval_compiled(self._cva, text, pinned)  # outside the lock
        with self._lock:
            self._verdict_misses += 1
            if key not in self._verdicts:
                if len(self._verdicts) >= _VERDICT_CACHE_LIMIT:
                    self._verdicts.popitem(last=False)
                self._verdicts[key] = verdict
        return verdict

    def matches(self, document: "Document | str") -> bool:
        """``⟦A⟧_d ≠ ∅`` (NonEmp as ``Eval`` with the empty mapping)."""
        return self.eval(document, ExtendedMapping.empty())

    def matches_many(self, documents: "Sequence[Document | str]") -> list[bool]:
        """NonEmp verdicts for a batch of documents.

        Identical to ``[self.matches(d) for d in documents]`` — same
        verdicts, same cache discipline — but verdict-cache misses on
        sequential automata resolve through one lockstep forward sweep
        (:func:`repro.engine.vector.batch_accept`) instead of one python
        sweep per document.  This is the server ``/evaluate`` hot path.

        >>> engine = compile_spanner(".*x{a+}.*")
        >>> engine.matches_many(["ba", "bb", "a"])
        [True, False, True]
        """
        texts = [as_text(document) for document in documents]
        out: list[bool | None] = [None] * len(texts)
        empty = ExtendedMapping.empty()
        empty_key = frozenset(empty.items())
        pending: OrderedDict[str, list[int]] = OrderedDict()
        with self._lock:
            for position, text in enumerate(texts):
                key = (len(text), hash(text), empty_key)
                verdict = self._verdicts.get(key)
                if verdict is not None:
                    self._verdicts.move_to_end(key)
                    self._verdict_hits += 1
                    out[position] = verdict
                else:
                    pending.setdefault(text, []).append(position)
        if not pending:
            return out
        miss_texts = list(pending)
        verdicts = batch_accept(self._cva, miss_texts)
        if verdicts is None:
            verdicts = [self.eval(text, empty) for text in miss_texts]
        else:
            with self._lock:
                for text, verdict in zip(miss_texts, verdicts):
                    self._verdict_misses += 1
                    key = (len(text), hash(text), empty_key)
                    if key not in self._verdicts:
                        if len(self._verdicts) >= _VERDICT_CACHE_LIMIT:
                            self._verdicts.popitem(last=False)
                        self._verdicts[key] = verdict
        for text, verdict in zip(miss_texts, verdicts):
            for position in pending[text]:
                out[position] = verdict
        return out

    def check(self, document: "Document | str", mapping: Mapping) -> bool:
        """``µ ∈ ⟦A⟧_d`` (ModelCheck as a total ``Eval`` instance)."""
        pinned = ExtendedMapping.total_for(mapping, self._cva.mentioned_variables)
        return self.eval(document, pinned)

    # -- enumeration ---------------------------------------------------------------

    def enumerate(
        self,
        document: "Document | str",
        start: ExtendedMapping | None = None,
    ) -> Iterator[Mapping]:
        """Algorithm 2 with span pruning and prefix-sharing oracles."""
        text = as_text(document)
        initial = ExtendedMapping.empty() if start is None else start
        if not self.eval(text, initial):
            return
        index = self.index(text)
        base = dict(initial.items())
        remaining = [
            variable
            for variable in sorted(self._cva.mentioned_variables)
            if variable not in base
        ]
        yield from self._recurse(text, index, base, remaining)

    def _recurse(
        self, text: str, index: DocumentIndex, base: dict, remaining: list
    ) -> Iterator[Mapping]:
        # Invariant: the oracle has confirmed some completion of `base` is in
        # the semantics, so a node with no remaining variables is an output.
        if not remaining:
            yield Mapping(
                {v: s for v, s in base.items() if isinstance(s, Span)}
            )
            return
        variable = remaining[0]
        rest = remaining[1:]
        if self._cva.is_sequential:
            node = node_sweep(self._cva, text, base, variable, index.classes)
        else:
            node = GeneralNode(self._cva, text, base, variable)
        for span in index.candidate_spans(variable):
            if node.accepts_span(span):
                child = dict(base)
                child[variable] = span
                yield from self._recurse(text, index, child, rest)
        if node.accepts_null():
            child = dict(base)
            child[variable] = NULL
            yield from self._recurse(text, index, child, rest)

    # -- materialised results --------------------------------------------------------

    def mappings(self, document: "Document | str") -> set[Mapping]:
        """``⟦A⟧_d`` as a set (drives :meth:`enumerate`)."""
        return set(self.enumerate(document))

    def count(self, document: "Document | str") -> int:
        return sum(1 for _ in self.enumerate(document))

    def extract(
        self, document: "Document | str", spans: bool = False
    ) -> list[dict[str, object]]:
        """Decoded results, one dict per mapping, absent fields omitted."""
        text = as_text(document)
        results = []
        for mapping in sorted(
            self.mappings(text),
            key=lambda m: sorted((v, s) for v, s in m.items()),
        ):
            if spans:
                results.append(dict(mapping.items()))
            else:
                results.append(
                    {v: s.content(text) for v, s in mapping.items()}
                )
        return results

    # -- batch API ---------------------------------------------------------------------

    def evaluate_many(
        self, documents: Iterable["Document | str"]
    ) -> list[set[Mapping]]:
        """``⟦A⟧_d`` for every document, sharing all compiled state.

        The transition tables, step cache, and sequentiality verdict are
        computed once for the whole batch; per-document indexes are cached,
        so repeated documents are almost free.  For corpus-scale batches
        with worker-pool sharding and error isolation, see
        :func:`repro.service.evaluate.evaluate_corpus`.

        >>> engine = compile_spanner(".*x{a+}.*")
        >>> [len(output) for output in engine.evaluate_many(["ba", "bb"])]
        [1, 0]
        """
        batch = list(documents)
        results: list[set[Mapping]] = []
        # Interleave warm-up and evaluation chunk by chunk: prewarming a
        # batch wider than the index LRU up front would evict the early
        # indexes before they are ever read.
        for start in range(0, len(batch), self.prewarm_limit):
            chunk = batch[start : start + self.prewarm_limit]
            self.prewarm(chunk)
            results.extend(self.mappings(document) for document in chunk)
        return results

    @property
    def prewarm_limit(self) -> int:
        """Documents whose indexes fit the cache at once — callers doing a
        prewarm-then-evaluate pass should chunk to this size."""
        return _DOCUMENT_CACHE_LIMIT

    def prewarm(self, documents: Iterable["Document | str"]) -> None:
        """Best-effort batch warm-up of the index and verdict caches.

        Sweeps cache-missing documents in lockstep chunks sized to the
        index LRU (:attr:`prewarm_limit`), so a following per-document
        pass (:meth:`mappings`, :meth:`extract`, :meth:`enumerate`)
        finds its index and NonEmp verdict already cached.  Evaluate in
        chunks of :attr:`prewarm_limit` when batches can outgrow the
        cache.  Documents the batch path cannot take (non-string
        payloads, vector layer unavailable) are skipped — per-document
        evaluation handles them, and their errors, as before.
        """
        texts = [
            document for document in documents if isinstance(document, str)
        ]
        for start in range(0, len(texts), _DOCUMENT_CACHE_LIMIT):
            try:
                self.index_many(texts[start : start + _DOCUMENT_CACHE_LIMIT])
            except Exception:
                return

    def extract_many(
        self, documents: Iterable["Document | str"], spans: bool = False
    ) -> list[list[dict[str, object]]]:
        """Decoded batch results (one list of dicts per document)."""
        return [self.extract(document, spans=spans) for document in documents]

    def __repr__(self) -> str:
        # The kind describes the sweep the engine actually runs (the
        # planned automaton's property), not the source classification.
        kind = "sequential" if self._cva.is_sequential else "general"
        return (
            f"CompiledSpanner({self._cva.num_states} states, {kind}, "
            f"variables {sorted(self.variables)})"
        )


def compile_spanner(source, opt_level: int | None = None) -> CompiledSpanner:
    """Compile any formalism into a reusable engine, through the planner.

    ``source`` may be RGX text, an AST, an extraction rule, a VA, a
    ``Spanner``, an existing ``CompiledSpanner`` (returned as-is), or a
    prepared :class:`~repro.plan.Plan`.  ``opt_level`` picks the planner
    pipeline (default: :data:`repro.plan.DEFAULT_OPT_LEVEL`); a plan at a
    different level is re-planned from its original source.

    >>> from repro.engine.compiled import compile_spanner
    >>> engine = compile_spanner(".*Seller: x{[^,\\n]*},.*")
    >>> engine.extract("Seller: John, ID75\\n")
    [{'x': 'John'}]
    >>> engine.plan.opt_level
    1
    """
    if isinstance(source, CompiledSpanner):
        return source
    return CompiledSpanner(plan=build_plan(source, opt_level=opt_level))
