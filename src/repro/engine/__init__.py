"""The compiled evaluation engine (hot path of the production roadmap).

Precompiled transition tables (:mod:`repro.engine.tables`), the bitmask
kernel — alphabet-class compression, mask state sets and the lazy-DFA
memo (:mod:`repro.engine.kernel`) — memoised and prefix-sharing ``Eval``
oracles (:mod:`repro.engine.oracle`), and the reusable
:class:`CompiledSpanner` with its batch API (:mod:`repro.engine.compiled`).
"""

from repro.engine.compiled import CompiledSpanner, compile_spanner
from repro.engine.kernel import (
    AlphabetClasses,
    Kernel,
    kernel_disabled,
    kernel_enabled,
)
from repro.engine.oracle import (
    eval_compiled,
    eval_general_compiled,
    eval_sequential_compiled,
    eval_sequential_kernel,
    eval_sequential_sets,
)
from repro.engine.tables import CompiledVA, DocumentIndex, compile_va

__all__ = [
    "AlphabetClasses",
    "CompiledSpanner",
    "CompiledVA",
    "DocumentIndex",
    "Kernel",
    "compile_spanner",
    "compile_va",
    "eval_compiled",
    "eval_general_compiled",
    "eval_sequential_compiled",
    "eval_sequential_kernel",
    "eval_sequential_sets",
    "kernel_disabled",
    "kernel_enabled",
]
