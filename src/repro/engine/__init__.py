"""The compiled evaluation engine (hot path of the production roadmap).

Precompiled transition tables (:mod:`repro.engine.tables`), memoised and
prefix-sharing ``Eval`` oracles (:mod:`repro.engine.oracle`), and the
reusable :class:`CompiledSpanner` with its batch API
(:mod:`repro.engine.compiled`).
"""

from repro.engine.compiled import CompiledSpanner, compile_spanner
from repro.engine.oracle import (
    eval_compiled,
    eval_general_compiled,
    eval_sequential_compiled,
)
from repro.engine.tables import CompiledVA, DocumentIndex, compile_va

__all__ = [
    "CompiledSpanner",
    "CompiledVA",
    "DocumentIndex",
    "compile_spanner",
    "compile_va",
    "eval_compiled",
    "eval_general_compiled",
    "eval_sequential_compiled",
]
