"""The compiled evaluation engine (hot path of the production roadmap).

Precompiled transition tables (:mod:`repro.engine.tables`), the bitmask
kernel — alphabet-class compression, mask state sets and the lazy-DFA
memo (:mod:`repro.engine.kernel`) — memoised and prefix-sharing ``Eval``
oracles (:mod:`repro.engine.oracle`), and the reusable
:class:`CompiledSpanner` with its batch API (:mod:`repro.engine.compiled`).
"""

import warnings as _warnings

from repro.engine.compiled import CompiledSpanner
from repro.engine.kernel import (
    AlphabetClasses,
    FlatOverflow,
    FlatTables,
    Kernel,
    flat_disabled,
    flat_enabled,
    kernel_disabled,
    kernel_enabled,
)
from repro.engine.oracle import (
    eval_compiled,
    eval_general_compiled,
    eval_sequential_compiled,
    eval_sequential_flat,
    eval_sequential_kernel,
    eval_sequential_sets,
)
from repro.engine.tables import CompiledVA, DocumentIndex, compile_va
from repro.engine.vector import vector_disabled, vector_enabled

__all__ = [
    "AlphabetClasses",
    "CompiledSpanner",
    "CompiledVA",
    "DocumentIndex",
    "FlatOverflow",
    "FlatTables",
    "Kernel",
    "compile_spanner",
    "compile_va",
    "eval_compiled",
    "eval_general_compiled",
    "eval_sequential_compiled",
    "eval_sequential_flat",
    "eval_sequential_kernel",
    "eval_sequential_sets",
    "flat_disabled",
    "flat_enabled",
    "kernel_disabled",
    "kernel_enabled",
    "vector_disabled",
    "vector_enabled",
]


def __getattr__(name: str):
    if name == "compile_spanner":
        _warnings.warn(
            "repro.engine.compile_spanner is deprecated; "
            "use repro.api.compile instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.engine.compiled import compile_spanner

        globals()[name] = compile_spanner  # warn exactly once per process
        return compile_spanner
    raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
