"""Compiled transition tables for variable-set automata.

The seed evaluators walk ``va.out_edges(state)`` and dispatch on the label
class at every simulation step — a linear scan with ``isinstance`` checks in
the innermost loop.  :class:`CompiledVA` precompiles a :class:`~repro.automata.va.VA`
once into indexed buckets:

* ``eps[q]`` / ``opens[q]`` / ``closes[q]`` — ε-targets and variable
  operations, separated so sweeps never touch labels they cannot use;
* a letter-step table: positive finite charsets are exploded into a
  per-state ``char → targets`` dict, cofinite predicates stay as a short
  residual list, and resolved ``(state, char)`` steps are memoised so
  repeated letters (the common case in CSV/log documents) cost one dict
  lookup;
* ``free`` / ``free_reversed`` adjacency — ε and variable operations
  collapsed into plain edges, the over-approximation used by the
  reachability index below.

:class:`DocumentIndex` pairs a compiled automaton with one document and
precomputes, per position, which states any run prefix can occupy
(``reach``) and which states can still finish the document (``coreach``).
From those two arrays it derives *candidate spans* per variable: a span
``(i, j)`` survives only if some ``x⊢`` transition can fire at position
``i`` and some ``⊣x`` transition at position ``j`` on a live run.  This is
the span pruning used by the compiled enumerator — the pruned list is
usually a tiny subset of the ``O(|d|²)`` spans the seed oracle tries.
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.sequential import is_sequential
from repro.automata.va import VA
from repro.engine.kernel import FlatOverflow, Kernel, iter_bits, kernel_enabled
from repro.engine.vector import op_positions_np
from repro.spans.mapping import Variable
from repro.spans.span import Span

#: Operation keys — hashable stand-ins for ``Open``/``Close`` labels in the
#: compiled sweeps (tuple hashing is cheaper than dataclass hashing).
OPEN, CLOSE = "o", "c"
OpKey = tuple[str, Variable]


def open_key(variable: Variable) -> OpKey:
    return (OPEN, variable)


def close_key(variable: Variable) -> OpKey:
    return (CLOSE, variable)


class CompiledVA:
    """Indexed transition tables for one automaton (document-independent)."""

    __slots__ = (
        "va",
        "num_states",
        "initial",
        "final",
        "eps",
        "opens",
        "closes",
        "sym_edges",
        "opens_by_variable",
        "closes_by_variable",
        "variables",
        "mentioned_variables",
        "is_sequential",
        "_single",
        "_residual",
        "_step_cache",
        "_free",
        "_free_reversed",
        "_kernel",
    )

    def __init__(self, va: VA) -> None:
        self.va = va
        self.num_states = va.num_states
        self.initial = va.initial
        self.final = va.final
        count = va.num_states
        self.eps: list[tuple[int, ...]] = [() for _ in range(count)]
        self.opens: list[tuple[tuple[Variable, int], ...]] = [() for _ in range(count)]
        self.closes: list[tuple[tuple[Variable, int], ...]] = [() for _ in range(count)]
        #: Every letter transition as ``(source, charset, target)`` — used by
        #: the backward reachability pass of :class:`DocumentIndex`.
        self.sym_edges: list[tuple[int, object, int]] = []
        single: list[dict[str, list[int]]] = [{} for _ in range(count)]
        residual: list[list[tuple[object, int]]] = [[] for _ in range(count)]
        eps_acc: list[list[int]] = [[] for _ in range(count)]
        opens_acc: list[list[tuple[Variable, int]]] = [[] for _ in range(count)]
        closes_acc: list[list[tuple[Variable, int]]] = [[] for _ in range(count)]
        for source, label, target in va.transitions:
            if isinstance(label, Eps):
                eps_acc[source].append(target)
            elif isinstance(label, Open):
                opens_acc[source].append((label.variable, target))
            elif isinstance(label, Close):
                closes_acc[source].append((label.variable, target))
            else:
                assert isinstance(label, Sym)
                self.sym_edges.append((source, label.charset, target))
                if label.charset.negated:
                    residual[source].append((label.charset, target))
                else:
                    for char in label.charset.chars:
                        single[source].setdefault(char, []).append(target)
        self.eps = [tuple(targets) for targets in eps_acc]
        self.opens = [tuple(edges) for edges in opens_acc]
        self.closes = [tuple(edges) for edges in closes_acc]
        #: Per-variable operation edges as ``(source, target)`` lists —
        #: precomputed so per-query code (candidate spans, counted
        #: closures) never rescans every state.
        by_open: dict[Variable, list[tuple[int, int]]] = {}
        by_close: dict[Variable, list[tuple[int, int]]] = {}
        for state in range(count):
            for variable, target in self.opens[state]:
                by_open.setdefault(variable, []).append((state, target))
            for variable, target in self.closes[state]:
                by_close.setdefault(variable, []).append((state, target))
        self.opens_by_variable = {
            variable: tuple(edges) for variable, edges in by_open.items()
        }
        self.closes_by_variable = {
            variable: tuple(edges) for variable, edges in by_close.items()
        }
        self._kernel: Kernel | None = None
        self._single = single
        self._residual = [tuple(edges) for edges in residual]
        self._step_cache: dict[tuple[int, str], tuple[int, ...]] = {}
        self._free = tuple(
            tuple(
                list(self.eps[state])
                + [t for _, t in self.opens[state]]
                + [t for _, t in self.closes[state]]
            )
            for state in range(count)
        )
        reversed_free: list[list[int]] = [[] for _ in range(count)]
        for state in range(count):
            for target in self._free[state]:
                reversed_free[target].append(state)
        self._free_reversed = tuple(tuple(edges) for edges in reversed_free)
        self.variables = va.variables
        self.mentioned_variables = va.mentioned_variables
        self.is_sequential = is_sequential(va)

    # -- the bitmask kernel ----------------------------------------------------

    @property
    def free_adjacency(self) -> tuple[tuple[int, ...], ...]:
        """ε and variable operations collapsed into plain edges."""
        return self._free

    @property
    def free_adjacency_reversed(self) -> tuple[tuple[int, ...], ...]:
        return self._free_reversed

    @property
    def kernel(self) -> Kernel:
        """The bitmask kernel of this automaton (built lazily, then shared
        by every document index, oracle call and sweep context)."""
        if self._kernel is None:
            self._kernel = Kernel(self)
        return self._kernel

    def kernel_or_none(self) -> Kernel | None:
        """The kernel, or ``None`` inside :func:`~repro.engine.kernel.kernel_disabled`."""
        if not kernel_enabled():
            return None
        return self.kernel

    # -- letter steps ----------------------------------------------------------

    def step(self, state: int, char: str) -> tuple[int, ...]:
        """Targets reachable from ``state`` by consuming ``char`` (memoised)."""
        key = (state, char)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        targets = list(self._single[state].get(char, ()))
        for charset, target in self._residual[state]:
            if charset.contains(char):
                targets.append(target)
        resolved = tuple(targets)
        self._step_cache[key] = resolved
        return resolved

    # -- operation-free reachability (the pruning over-approximation) -----------

    def free_closure(self, states: set[int]) -> frozenset[int]:
        """Closure under ε *and* variable operations treated as free moves."""
        seen = set(states)
        frontier = list(states)
        free = self._free
        while frontier:
            state = frontier.pop()
            for target in free[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def free_closure_reversed(self, states: set[int]) -> frozenset[int]:
        seen = set(states)
        frontier = list(states)
        reversed_free = self._free_reversed
        while frontier:
            state = frontier.pop()
            for source in reversed_free[state]:
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return frozenset(seen)


@lru_cache(maxsize=128)
def compile_va(va: VA) -> CompiledVA:
    """Compile (and cache) the transition tables of an automaton.

    The cache keys on VA equality; for *structural* sharing across
    independently built automata (and across processes) use
    :class:`repro.service.cache.SpannerCache` instead.

    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile("x{a}b").automaton)
    >>> cva.is_sequential, sorted(cva.variables)
    (True, ['x'])
    """
    return CompiledVA(va)


class DocumentIndex:
    """Per-document reachability and candidate-span tables.

    ``reach[p]`` over-approximates the states a run prefix can occupy at
    position ``p`` (variable operations treated as ε, so no run is missed);
    ``coreach[p]`` over-approximates the states from which the rest of the
    document can still be consumed into the final state.  A variable can
    only open at positions where an ``x⊢`` edge connects the two, and only
    close where a ``⊣x`` edge does — every span outside the product of
    those position sets is unreachable and safely skipped.

    On kernel-enabled automata (the default) both sweeps run over the
    flat-table layer: the document is interned once into a ``bytes`` of
    alphabet-class ids, and each pass walks the interned flat DFA — two
    indexed loads per position (:class:`~repro.engine.kernel.FlatDFA`),
    with the backward pass on the precomputed *reverse* class-step
    table.  A flat-DFA state overflow
    (:class:`~repro.engine.kernel.FlatOverflow`) or
    :func:`~repro.engine.kernel.flat_disabled` drops to the dict-memo
    kernel sweep; the set-based sweeps remain as the final fallback
    (``use_kernel=False``, or inside
    :func:`~repro.engine.kernel.kernel_disabled`).

    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile(".*x{a}.*").automaton)
    >>> DocumentIndex(cva, "ba").candidate_spans("x")
    (Span(begin=2, end=3),)
    """

    def __init__(self, cva: CompiledVA, text: str, use_kernel: bool = True) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        #: Interned class ids — ``bytes`` on the flat path, a tuple on the
        #: dict-kernel path, ``None`` on the set-based fallback.
        self.classes: "bytes | tuple[int, ...] | None" = None
        self._reach_masks: list[int] | None = None
        self._coreach_masks: list[int] | None = None
        self._reach_sets: list[frozenset[int]] | None = None
        self._coreach_sets: list[frozenset[int]] | None = None
        #: Per-position masks as ``uint64`` numpy arrays — set only by
        #: :meth:`from_flat_sweeps` on ≤64-state automata, enabling the
        #: vectorized candidate-span filter.
        self._reach_np = None
        self._coreach_np = None
        self._span_cache: dict[Variable, tuple[Span, ...]] = {}
        kernel = cva.kernel_or_none() if use_kernel else None
        if kernel is not None:
            flat = kernel.flat_or_none()
            if flat is not None:
                try:
                    self._build_flat(kernel, flat, text)
                    return
                except FlatOverflow:
                    pass  # fall through: the dict sweep rebuilds everything
            self._build_kernel(kernel, text)
        else:
            self._build_sets(text)

    @classmethod
    def from_flat_sweeps(
        cls,
        cva: CompiledVA,
        text: str,
        classes,
        reach_masks: list[int],
        coreach_masks: list[int],
        reach_np=None,
        coreach_np=None,
    ) -> "DocumentIndex":
        """An index from precomputed flat sweeps (the batch vector path).

        :func:`repro.engine.vector.batch_index` runs the reach/coreach
        sweeps for a whole document batch in lockstep and hands each
        document's per-position masks here — the same masks
        :meth:`_build_flat` would compute one document at a time.
        """
        self = cls.__new__(cls)
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.classes = classes
        self._reach_masks = reach_masks
        self._coreach_masks = coreach_masks
        self._reach_sets = None
        self._coreach_sets = None
        self._reach_np = reach_np
        self._coreach_np = coreach_np
        self._span_cache = {}
        return self

    def _build_flat(self, kernel, flat, text: str) -> None:
        end = self.end
        cva = self.cva
        classes = flat.intern(text)
        self.classes = classes
        dfa = flat.dfa
        rows = dfa.rows
        explore = dfa.explore
        state = dfa.intern(kernel.free[cva.initial])
        reach_ids = [0] * (end + 1)
        reach_ids[1] = state
        row = rows[state]
        pos = 1
        while pos < end and state:
            class_id = classes[pos - 1]
            target = row[class_id]
            if target < 0:
                target = explore(state, class_id)
            reach_ids[pos + 1] = target
            state = target
            if target:
                row = rows[target]
            pos += 1
        masks = dfa.masks
        self._reach_masks = [masks[sid] for sid in reach_ids]
        dfa_rev = flat.dfa_rev
        rows = dfa_rev.rows
        explore = dfa_rev.explore
        state = dfa_rev.intern(kernel.free_rev[cva.final])
        coreach_ids = [0] * (end + 1)
        coreach_ids[end] = state
        row = rows[state]
        pos = end - 1
        while pos > 0 and state:
            class_id = classes[pos - 1]
            target = row[class_id]
            if target < 0:
                target = explore(state, class_id)
            coreach_ids[pos] = target
            state = target
            if target:
                row = rows[target]
            pos -= 1
        masks = dfa_rev.masks
        self._coreach_masks = [masks[sid] for sid in coreach_ids]

    def _build_kernel(self, kernel, text: str) -> None:
        end = self.end
        cva = self.cva
        classes = kernel.intern(text)
        self.classes = classes
        reach = [0] * (end + 1)
        current = kernel.free[cva.initial]
        reach[1] = current
        delta = kernel.delta_step
        for pos in range(1, end):
            current = delta(current, classes[pos - 1]) if current else 0
            reach[pos + 1] = current
        coreach = [0] * (end + 1)
        current = kernel.free_rev[cva.final]
        coreach[end] = current
        delta_rev = kernel.delta_rev_step
        for pos in range(end - 1, 0, -1):
            current = delta_rev(current, classes[pos - 1]) if current else 0
            coreach[pos] = current
        self._reach_masks = reach
        self._coreach_masks = coreach

    def _build_sets(self, text: str) -> None:
        end = self.end
        cva = self.cva
        reach: list[frozenset[int]] = [frozenset()] * (end + 1)
        current = cva.free_closure({cva.initial})
        reach[1] = current
        for pos in range(1, end):
            letter = text[pos - 1]
            seeds: set[int] = set()
            for state in current:
                seeds.update(cva.step(state, letter))
            current = cva.free_closure(seeds) if seeds else frozenset()
            reach[pos + 1] = current
        coreach: list[frozenset[int]] = [frozenset()] * (end + 1)
        current = cva.free_closure_reversed({cva.final})
        coreach[end] = current
        for pos in range(end - 1, 0, -1):
            letter = text[pos - 1]
            ahead = coreach[pos + 1]
            seeds = set()
            if ahead:
                for source, charset, target in cva.sym_edges:
                    if target in ahead and charset.contains(letter):
                        seeds.add(source)
            coreach[pos] = cva.free_closure_reversed(seeds) if seeds else frozenset()
        self._reach_sets = reach
        self._coreach_sets = coreach

    @property
    def reach(self) -> list[frozenset[int]]:
        """Per-position reach state sets (materialised from masks on the
        kernel path; kept for inspection and cross-validation)."""
        if self._reach_sets is None:
            self._reach_sets = [
                frozenset(iter_bits(mask)) for mask in self._reach_masks
            ]
        return self._reach_sets

    @property
    def coreach(self) -> list[frozenset[int]]:
        if self._coreach_sets is None:
            self._coreach_sets = [
                frozenset(iter_bits(mask)) for mask in self._coreach_masks
            ]
        return self._coreach_sets

    def open_positions(self, variable: Variable) -> list[int]:
        """Positions where an ``x⊢`` transition can fire on a live run."""
        return self._op_positions(self.cva.opens_by_variable, variable)

    def close_positions(self, variable: Variable) -> list[int]:
        return self._op_positions(self.cva.closes_by_variable, variable)

    def _op_positions(self, table, variable: Variable) -> list[int]:
        edges = table.get(variable, ())
        if not edges:
            return []
        positions = []
        if self._reach_np is not None:
            vectorized = op_positions_np(self._reach_np, self._coreach_np, edges)
            if vectorized is not None:
                return vectorized
        if self._reach_masks is not None:
            pairs = [(1 << source, 1 << target) for source, target in edges]
            source_all = 0
            target_all = 0
            for source_bit, target_bit in pairs:
                source_all |= source_bit
                target_all |= target_bit
            reach, coreach = self._reach_masks, self._coreach_masks
            for pos in range(1, self.end + 1):
                live, ahead = reach[pos], coreach[pos]
                if not (live & source_all and ahead & target_all):
                    continue
                if any(
                    live & source_bit and ahead & target_bit
                    for source_bit, target_bit in pairs
                ):
                    positions.append(pos)
            return positions
        for pos in range(1, self.end + 1):
            live, ahead = self._reach_sets[pos], self._coreach_sets[pos]
            if any(state in live and target in ahead for state, target in edges):
                positions.append(pos)
        return positions

    def candidate_spans(self, variable: Variable) -> tuple[Span, ...]:
        """The pruned span list for one variable, in the seed's (i, j) order."""
        cached = self._span_cache.get(variable)
        if cached is None:
            opens = self.open_positions(variable)
            closes = self.close_positions(variable)
            cached = tuple(
                Span(i, j) for i in opens for j in closes if i <= j
            )
            self._span_cache[variable] = cached
        return cached
