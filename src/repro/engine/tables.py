"""Compiled transition tables for variable-set automata.

The seed evaluators walk ``va.out_edges(state)`` and dispatch on the label
class at every simulation step — a linear scan with ``isinstance`` checks in
the innermost loop.  :class:`CompiledVA` precompiles a :class:`~repro.automata.va.VA`
once into indexed buckets:

* ``eps[q]`` / ``opens[q]`` / ``closes[q]`` — ε-targets and variable
  operations, separated so sweeps never touch labels they cannot use;
* a letter-step table: positive finite charsets are exploded into a
  per-state ``char → targets`` dict, cofinite predicates stay as a short
  residual list, and resolved ``(state, char)`` steps are memoised so
  repeated letters (the common case in CSV/log documents) cost one dict
  lookup;
* ``free`` / ``free_reversed`` adjacency — ε and variable operations
  collapsed into plain edges, the over-approximation used by the
  reachability index below.

:class:`DocumentIndex` pairs a compiled automaton with one document and
precomputes, per position, which states any run prefix can occupy
(``reach``) and which states can still finish the document (``coreach``).
From those two arrays it derives *candidate spans* per variable: a span
``(i, j)`` survives only if some ``x⊢`` transition can fire at position
``i`` and some ``⊣x`` transition at position ``j`` on a live run.  This is
the span pruning used by the compiled enumerator — the pruned list is
usually a tiny subset of the ``O(|d|²)`` spans the seed oracle tries.
"""

from __future__ import annotations

from functools import lru_cache

from repro.automata.labels import Close, Eps, Open, Sym
from repro.automata.sequential import is_sequential
from repro.automata.va import VA
from repro.spans.mapping import Variable
from repro.spans.span import Span

#: Operation keys — hashable stand-ins for ``Open``/``Close`` labels in the
#: compiled sweeps (tuple hashing is cheaper than dataclass hashing).
OPEN, CLOSE = "o", "c"
OpKey = tuple[str, Variable]


def open_key(variable: Variable) -> OpKey:
    return (OPEN, variable)


def close_key(variable: Variable) -> OpKey:
    return (CLOSE, variable)


class CompiledVA:
    """Indexed transition tables for one automaton (document-independent)."""

    __slots__ = (
        "va",
        "num_states",
        "initial",
        "final",
        "eps",
        "opens",
        "closes",
        "sym_edges",
        "variables",
        "mentioned_variables",
        "is_sequential",
        "_single",
        "_residual",
        "_step_cache",
        "_free",
        "_free_reversed",
    )

    def __init__(self, va: VA) -> None:
        self.va = va
        self.num_states = va.num_states
        self.initial = va.initial
        self.final = va.final
        count = va.num_states
        self.eps: list[tuple[int, ...]] = [() for _ in range(count)]
        self.opens: list[tuple[tuple[Variable, int], ...]] = [() for _ in range(count)]
        self.closes: list[tuple[tuple[Variable, int], ...]] = [() for _ in range(count)]
        #: Every letter transition as ``(source, charset, target)`` — used by
        #: the backward reachability pass of :class:`DocumentIndex`.
        self.sym_edges: list[tuple[int, object, int]] = []
        single: list[dict[str, list[int]]] = [{} for _ in range(count)]
        residual: list[list[tuple[object, int]]] = [[] for _ in range(count)]
        eps_acc: list[list[int]] = [[] for _ in range(count)]
        opens_acc: list[list[tuple[Variable, int]]] = [[] for _ in range(count)]
        closes_acc: list[list[tuple[Variable, int]]] = [[] for _ in range(count)]
        for source, label, target in va.transitions:
            if isinstance(label, Eps):
                eps_acc[source].append(target)
            elif isinstance(label, Open):
                opens_acc[source].append((label.variable, target))
            elif isinstance(label, Close):
                closes_acc[source].append((label.variable, target))
            else:
                assert isinstance(label, Sym)
                self.sym_edges.append((source, label.charset, target))
                if label.charset.negated:
                    residual[source].append((label.charset, target))
                else:
                    for char in label.charset.chars:
                        single[source].setdefault(char, []).append(target)
        self.eps = [tuple(targets) for targets in eps_acc]
        self.opens = [tuple(edges) for edges in opens_acc]
        self.closes = [tuple(edges) for edges in closes_acc]
        self._single = single
        self._residual = [tuple(edges) for edges in residual]
        self._step_cache: dict[tuple[int, str], tuple[int, ...]] = {}
        self._free = tuple(
            tuple(
                list(self.eps[state])
                + [t for _, t in self.opens[state]]
                + [t for _, t in self.closes[state]]
            )
            for state in range(count)
        )
        reversed_free: list[list[int]] = [[] for _ in range(count)]
        for state in range(count):
            for target in self._free[state]:
                reversed_free[target].append(state)
        self._free_reversed = tuple(tuple(edges) for edges in reversed_free)
        self.variables = va.variables
        self.mentioned_variables = va.mentioned_variables
        self.is_sequential = is_sequential(va)

    # -- letter steps ----------------------------------------------------------

    def step(self, state: int, char: str) -> tuple[int, ...]:
        """Targets reachable from ``state`` by consuming ``char`` (memoised)."""
        key = (state, char)
        cached = self._step_cache.get(key)
        if cached is not None:
            return cached
        targets = list(self._single[state].get(char, ()))
        for charset, target in self._residual[state]:
            if charset.contains(char):
                targets.append(target)
        resolved = tuple(targets)
        self._step_cache[key] = resolved
        return resolved

    # -- operation-free reachability (the pruning over-approximation) -----------

    def free_closure(self, states: set[int]) -> frozenset[int]:
        """Closure under ε *and* variable operations treated as free moves."""
        seen = set(states)
        frontier = list(states)
        free = self._free
        while frontier:
            state = frontier.pop()
            for target in free[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return frozenset(seen)

    def free_closure_reversed(self, states: set[int]) -> frozenset[int]:
        seen = set(states)
        frontier = list(states)
        reversed_free = self._free_reversed
        while frontier:
            state = frontier.pop()
            for source in reversed_free[state]:
                if source not in seen:
                    seen.add(source)
                    frontier.append(source)
        return frozenset(seen)


@lru_cache(maxsize=128)
def compile_va(va: VA) -> CompiledVA:
    """Compile (and cache) the transition tables of an automaton.

    The cache keys on VA equality; for *structural* sharing across
    independently built automata (and across processes) use
    :class:`repro.service.cache.SpannerCache` instead.

    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile("x{a}b").automaton)
    >>> cva.is_sequential, sorted(cva.variables)
    (True, ['x'])
    """
    return CompiledVA(va)


class DocumentIndex:
    """Per-document reachability and candidate-span tables.

    ``reach[p]`` over-approximates the states a run prefix can occupy at
    position ``p`` (variable operations treated as ε, so no run is missed);
    ``coreach[p]`` over-approximates the states from which the rest of the
    document can still be consumed into the final state.  A variable can
    only open at positions where an ``x⊢`` edge connects the two, and only
    close where a ``⊣x`` edge does — every span outside the product of
    those position sets is unreachable and safely skipped.

    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile(".*x{a}.*").automaton)
    >>> DocumentIndex(cva, "ba").candidate_spans("x")
    (Span(begin=2, end=3),)
    """

    def __init__(self, cva: CompiledVA, text: str) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        end = self.end
        reach: list[frozenset[int]] = [frozenset()] * (end + 1)
        current = cva.free_closure({cva.initial})
        reach[1] = current
        for pos in range(1, end):
            letter = text[pos - 1]
            seeds: set[int] = set()
            for state in current:
                seeds.update(cva.step(state, letter))
            current = cva.free_closure(seeds) if seeds else frozenset()
            reach[pos + 1] = current
        coreach: list[frozenset[int]] = [frozenset()] * (end + 1)
        current = cva.free_closure_reversed({cva.final})
        coreach[end] = current
        for pos in range(end - 1, 0, -1):
            letter = text[pos - 1]
            ahead = coreach[pos + 1]
            seeds = set()
            if ahead:
                for source, charset, target in cva.sym_edges:
                    if target in ahead and charset.contains(letter):
                        seeds.add(source)
            coreach[pos] = cva.free_closure_reversed(seeds) if seeds else frozenset()
        self.reach = reach
        self.coreach = coreach
        self._span_cache: dict[Variable, tuple[Span, ...]] = {}

    def open_positions(self, variable: Variable) -> list[int]:
        """Positions where an ``x⊢`` transition can fire on a live run."""
        return self._op_positions(self.cva.opens, variable)

    def close_positions(self, variable: Variable) -> list[int]:
        return self._op_positions(self.cva.closes, variable)

    def _op_positions(self, table, variable: Variable) -> list[int]:
        edges = [
            (state, target)
            for state in range(self.cva.num_states)
            for var, target in table[state]
            if var == variable
        ]
        positions = []
        for pos in range(1, self.end + 1):
            live, ahead = self.reach[pos], self.coreach[pos]
            if any(state in live and target in ahead for state, target in edges):
                positions.append(pos)
        return positions

    def candidate_spans(self, variable: Variable) -> tuple[Span, ...]:
        """The pruned span list for one variable, in the seed's (i, j) order."""
        cached = self._span_cache.get(variable)
        if cached is None:
            opens = self.open_positions(variable)
            closes = self.close_positions(variable)
            cached = tuple(
                Span(i, j) for i in opens for j in closes if i <= j
            )
            self._span_cache[variable] = cached
        return cached
