"""Compiled, memoised ``Eval`` oracles (Theorems 5.7 / 5.10 on tables).

Two layers:

* :func:`eval_compiled` — a drop-in for
  :func:`repro.evaluation.eval_problem.eval_va` that runs the same position
  sweeps over :class:`~repro.engine.tables.CompiledVA` tables.  Sequentiality
  is decided once at compile time instead of per oracle call, and the letter
  step is a memoised table lookup.

* :class:`NodeSweep` — the enumeration-time oracle for one recursion node of
  Algorithm 2.  A node fixes a base extended mapping ``µ`` and refines one
  variable ``x``; its sibling branches ``µ[x → (i, j)]`` share the entire
  sweep prefix below position ``i`` (their requirement profiles agree on
  every earlier position, and ``x`` is classified identically everywhere but
  ``i`` and ``j``).  ``NodeSweep`` runs that shared prefix once, records the
  state-set entering every position, and answers each sibling query by
  resuming from the recorded set — turning the seed's ``O(|d|)`` sweep per
  candidate into ``O(|d| - i)`` with the prefix amortised across siblings.

On kernel-enabled automata the sequential sweeps run over the bitmask
kernel (:mod:`repro.engine.kernel`): state sets are ints, the per-count
buckets of the requirement-tracking closure are per-count masks, and
positions without required operations are single lazy-DFA dict hits
shared across every oracle call on the same automaton.
:func:`eval_sequential_sets` and the set-based :class:`NodeSweep` remain
as the fallback path and the cross-validation baseline; the general
(FPT) sweep of Theorem 5.10 is always set-based — its simulation states
carry performed-sets and status vectors that do not pack into per-state
bits.
"""

from __future__ import annotations

from repro.engine.kernel import Kernel
from repro.engine.tables import CompiledVA, close_key, open_key
from repro.spans.mapping import NULL, ExtendedMapping, Variable
from repro.spans.span import Span

_NO_OPS: frozenset = frozenset()

_FRESH, _OPEN, _DONE = range(3)


class Requirements:
    """Pinned operations bucketed by position (compiled ``_Requirements``)."""

    __slots__ = ("valid", "required", "pinned", "nulls")

    def __init__(self, cva: CompiledVA, end: int, pinned) -> None:
        self.valid = True
        self.required: dict[int, frozenset] = {}
        self.pinned: set[Variable] = set()
        self.nulls: set[Variable] = set()
        automaton_variables = cva.variables
        accumulated: dict[int, set] = {}
        for variable, value in pinned.items():
            if value is NULL:
                self.nulls.add(variable)
                continue
            if (
                variable not in automaton_variables
                or value.begin < 1
                or value.end > end
            ):
                self.valid = False  # no run can ever satisfy this pin
                return
            self.pinned.add(variable)
            accumulated.setdefault(value.begin, set()).add(open_key(variable))
            accumulated.setdefault(value.end, set()).add(close_key(variable))
        self.required = {pos: frozenset(ops) for pos, ops in accumulated.items()}

    def at(self, pos: int) -> frozenset:
        return self.required.get(pos, _NO_OPS)


def _closure(cva: CompiledVA, seeds, required: frozenset, pinned, nulls):
    """Saturate ε/operation moves at one position (count-tracking form)."""
    out = set(seeds)
    frontier = list(out)
    total = len(required)
    eps, opens, closes = cva.eps, cva.opens, cva.closes
    while frontier:
        state, count = frontier.pop()
        for target in eps[state]:
            nxt = (target, count)
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)
        for kind, table in (("o", opens), ("c", closes)):
            for variable, target in table[state]:
                if variable in nulls:
                    # ⊥-pin: the open stays available (a dangling open leaves
                    # the variable unused), only the close is forbidden.
                    if kind == "c":
                        continue
                    nxt = (target, count)
                elif variable in pinned:
                    if (kind, variable) not in required or count >= total:
                        continue
                    nxt = (target, count + 1)
                else:
                    nxt = (target, count)
                if nxt not in out:
                    out.add(nxt)
                    frontier.append(nxt)
    return out


def _advance(cva: CompiledVA, current, letter: str, needed: int):
    """Letter step: keep runs that performed every required op, reset counts."""
    seeds = set()
    step = cva.step
    for state, count in current:
        if count != needed:
            continue
        for target in step(state, letter):
            seeds.add((target, 0))
    return seeds


def eval_sequential_sets(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.7's sweep over compiled tables (set-based fallback)."""
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    pinned_set, nulls = requirements.pinned, requirements.nulls
    current = _closure(
        cva, {(cva.initial, 0)}, requirements.at(1), pinned_set, nulls
    )
    for pos in range(1, end):
        seeds = _advance(cva, current, text[pos - 1], len(requirements.at(pos)))
        if not seeds:
            return False
        current = _closure(cva, seeds, requirements.at(pos + 1), pinned_set, nulls)
    return (cva.final, len(requirements.at(end))) in current


def _sweep_masks(context, classes, start, end, masks, needed, required_at, entering=None):
    """Advance per-count masks from position ``start`` up to ``end``.

    The one copy of the kernel sweep loop shared by the ``Eval`` oracle
    and both phases of :class:`KernelNodeSweep`.  ``masks``/``needed``
    are the closure at ``start`` (``masks[needed]`` is the live set);
    ``required_at(pos)`` yields the required-op set entering ``pos``
    (falsy for none — the memoised lazy-DFA fast path).  When
    ``entering`` is given, the count-0 closed mask entering every swept
    position is recorded into it.  Returns the final ``(masks, needed)``
    pair, or ``None`` once no run survives.
    """
    for pos in range(start, end):
        mask = masks[needed]
        if not mask:
            return None
        class_id = classes[pos - 1]
        upcoming = required_at(pos + 1)
        if upcoming:
            seeds = context.letter(mask, class_id)
            masks = context.closure_counted([seeds], upcoming) if seeds else None
            if entering is not None:
                entering[pos + 1] = masks[0] if masks else 0
            if masks is None:
                return None
            needed = len(upcoming)
        else:
            mask = context.delta_step(mask, class_id)
            if entering is not None:
                entering[pos + 1] = mask
            if not mask:
                return None
            masks = [mask]
            needed = 0
    return masks, needed


def eval_sequential_kernel(
    cva: CompiledVA,
    text: str,
    pinned,
    kernel: Kernel | None = None,
    classes: "tuple[int, ...] | None" = None,
) -> bool:
    """Theorem 5.7's sweep over the bitmask kernel.

    The requirement-tracking state sets become per-count masks; positions
    with no required operations (all but the ≤ 2k pinned-span endpoints)
    are one memoised lazy-DFA transition each.
    """
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    if kernel is None:
        kernel = cva.kernel
    context = kernel.context(
        frozenset(requirements.pinned), frozenset(requirements.nulls)
    )
    if classes is None:
        classes = kernel.intern(text)
    required = requirements.required
    first = required.get(1)
    initial_mask = 1 << cva.initial
    if first:
        masks = context.closure_counted([initial_mask], first)
        needed = len(first)
    else:
        masks = [context.close(initial_mask)]
        needed = 0
    swept = _sweep_masks(context, classes, 1, end, masks, needed, required.get)
    if swept is None:
        return False
    masks, needed = swept
    return bool((masks[needed] >> cva.final) & 1)


def eval_sequential_compiled(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.7's sweep: the kernel path when enabled, sets otherwise."""
    if cva.kernel_or_none() is not None:
        return eval_sequential_kernel(cva, text, pinned)
    return eval_sequential_sets(cva, text, pinned)


def _general_closure(cva: CompiledVA, seeds, required: frozenset, pinned, nulls, index):
    """Theorem 5.10's closure: performed-set plus free-variable statuses."""
    out = set(seeds)
    frontier = list(out)
    eps, opens, closes = cva.eps, cva.opens, cva.closes
    while frontier:
        state, done, statuses = frontier.pop()
        for target in eps[state]:
            nxt = (target, done, statuses)
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)
        for kind, table, before, after in (
            ("o", opens, _FRESH, _OPEN),
            ("c", closes, _OPEN, _DONE),
        ):
            for variable, target in table[state]:
                if variable in nulls and kind == "c":
                    # ⊥-pin: the close would assign the variable; the open
                    # stays available and is status-tracked like a free one.
                    continue
                if variable in pinned:
                    key = (kind, variable)
                    if key in done or key not in required:
                        continue
                    if (
                        kind == "c"
                        and ("o", variable) in required
                        and ("o", variable) not in done
                    ):
                        # Empty pinned span: the open must precede the close
                        # within this position for the run to be valid.
                        continue
                    nxt = (target, done | {key}, statuses)
                else:
                    i = index[variable]
                    if statuses[i] != before:
                        continue
                    nxt = (
                        target,
                        done,
                        statuses[:i] + (after,) + statuses[i + 1 :],
                    )
                if nxt not in out:
                    out.add(nxt)
                    frontier.append(nxt)
    return out


def eval_general_compiled(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.10's FPT sweep over compiled tables."""
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    pinned_set, nulls = requirements.pinned, requirements.nulls
    # ⊥-pinned variables stay status-tracked (opens may fire at most once on
    # a run); only span-pinned variables leave the status vector.
    free_variables = tuple(sorted(cva.mentioned_variables - pinned_set))
    index = {variable: i for i, variable in enumerate(free_variables)}
    initial = (cva.initial, _NO_OPS, (_FRESH,) * len(free_variables))
    current = _general_closure(
        cva, {initial}, requirements.at(1), pinned_set, nulls, index
    )
    for pos in range(1, end):
        required = requirements.at(pos)
        letter = text[pos - 1]
        seeds = set()
        step = cva.step
        for state, done, statuses in current:
            if done != required:
                continue
            for target in step(state, letter):
                seeds.add((target, _NO_OPS, statuses))
        if not seeds:
            return False
        current = _general_closure(
            cva, seeds, requirements.at(pos + 1), pinned_set, nulls, index
        )
    required = requirements.at(end)
    final = cva.final
    return any(
        state == final and done == required for state, done, _ in current
    )


def eval_compiled(cva: CompiledVA, text: str, pinned: ExtendedMapping) -> bool:
    """``Eval[VA]`` on compiled tables (sequentiality decided at compile time).

    ``pinned`` constrains the output mapping: a span value pins the
    assignment, ``⊥`` (:data:`~repro.spans.mapping.NULL`) pins the
    variable *unassigned*, absence leaves it unconstrained.

    >>> from repro.engine.tables import compile_va
    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile("x{a}(y{b}|ε)c*").automaton)
    >>> eval_compiled(cva, "ac", ExtendedMapping({"y": NULL}))
    True
    >>> eval_compiled(cva, "ab", ExtendedMapping({"y": NULL}))
    False
    """
    if cva.is_sequential:
        return eval_sequential_compiled(cva, text, pinned)
    return eval_general_compiled(cva, text, pinned)


class NodeSweep:
    """Sibling-sharing oracle for one recursion node (sequential automata).

    The base context pins every previously fixed variable and treats the
    refined variable ``x`` as *operation-less pinned* — classified exactly
    like ``x → ⊥``, so the base sweep simultaneously answers the ``⊥``
    branch and provides correct entry state-sets for every span branch.
    """

    __slots__ = (
        "cva",
        "text",
        "end",
        "variable",
        "valid",
        "_requirements",
        "_pinned",
        "_nulls",
        "_entering",
        "_final_states",
        "_open_key",
        "_close_key",
    )

    def __init__(self, cva: CompiledVA, text: str, base, variable: Variable) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.variable = variable
        requirements = Requirements(cva, self.end, base)
        self.valid = requirements.valid
        self._requirements = requirements
        self._entering: list = []
        self._final_states = None
        self._open_key = open_key(variable)
        self._close_key = close_key(variable)
        if not self.valid:
            return
        # x joins the pinned set with no required ops anywhere: forbidden at
        # every position, exactly like the ⊥ pin, so the prefix state-sets
        # are shared verbatim by every sibling branch.
        self._pinned = requirements.pinned | {variable}
        self._nulls = requirements.nulls
        self._run_base()

    def _run_base(self) -> None:
        cva, text, end = self.cva, self.text, self.end
        requirements = self._requirements
        entering: list = [None] * (end + 1)
        entering[1] = {(cva.initial, 0)}
        current = _closure(
            cva, entering[1], requirements.at(1), self._pinned, self._nulls
        )
        for pos in range(1, end):
            seeds = _advance(
                cva, current, text[pos - 1], len(requirements.at(pos))
            )
            entering[pos + 1] = seeds
            if not seeds:
                # Every later position is unreachable in the base context.
                for later in range(pos + 2, end + 1):
                    entering[later] = seeds
                self._entering = entering
                self._final_states = frozenset()
                return
            current = _closure(
                cva, seeds, requirements.at(pos + 1), self._pinned, self._nulls
            )
        self._entering = entering
        self._final_states = current

    def accepts_null(self) -> bool:
        """The verdict for ``µ[x → ⊥]`` — the base sweep's own acceptance."""
        if not self.valid:
            return False
        return (self.cva.final, len(self._requirements.at(self.end))) in self._final_states

    def accepts_span(self, span: Span) -> bool:
        """The verdict for ``µ[x → span]``, resumed from the shared prefix."""
        if not self.valid:
            return False
        i, j = span.begin, span.end
        if i < 1 or j > self.end or self.variable not in self.cva.variables:
            return False
        entering = self._entering[i]
        if not entering:
            return False
        cva, text, end = self.cva, self.text, self.end
        requirements = self._requirements

        def required_at(pos: int) -> frozenset:
            base = requirements.at(pos)
            if pos != i and pos != j:
                return base
            extra = set(base)
            if pos == i:
                extra.add(self._open_key)
            if pos == j:
                extra.add(self._close_key)
            return frozenset(extra)

        current = _closure(cva, entering, required_at(i), self._pinned, self._nulls)
        for pos in range(i, end):
            seeds = _advance(cva, current, text[pos - 1], len(required_at(pos)))
            if not seeds:
                return False
            current = _closure(
                cva, seeds, required_at(pos + 1), self._pinned, self._nulls
            )
        return (cva.final, len(required_at(end))) in current


class KernelNodeSweep:
    """The :class:`NodeSweep` oracle over the bitmask kernel.

    Same prefix-sharing contract: the base sweep (one lazy-DFA hit per
    position) records the count-0 closed mask *entering* every position,
    and each sibling span ``(i, j)`` resumes from position ``i`` with the
    open/close requirements spliced in — base closure is idempotent, so
    resuming from the closed mask is equivalent to resuming from the raw
    seeds the set-based sweep records.
    """

    __slots__ = (
        "cva",
        "text",
        "end",
        "variable",
        "valid",
        "_context",
        "_classes",
        "_required",
        "_entering",
        "_final_masks",
        "_final_needed",
        "_open_key",
        "_close_key",
    )

    def __init__(
        self,
        cva: CompiledVA,
        text: str,
        base,
        variable: Variable,
        kernel: Kernel | None = None,
        classes: "tuple[int, ...] | None" = None,
    ) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.variable = variable
        requirements = Requirements(cva, self.end, base)
        self.valid = requirements.valid
        self._open_key = open_key(variable)
        self._close_key = close_key(variable)
        if not self.valid:
            return
        if kernel is None:
            kernel = cva.kernel
        # x joins the pinned set with no required ops anywhere: forbidden at
        # every position, exactly like the ⊥ pin, so the prefix masks are
        # shared verbatim by every sibling branch.
        self._context = kernel.context(
            frozenset(requirements.pinned | {variable}),
            frozenset(requirements.nulls),
        )
        self._classes = kernel.intern(text) if classes is None else classes
        self._required = requirements.required
        self._run_base()

    def _run_base(self) -> None:
        context, classes = self._context, self._classes
        required = self._required
        end = self.end
        entering = [0] * (end + 1)
        initial_mask = 1 << self.cva.initial
        entering[1] = context.close(initial_mask)
        first = required.get(1)
        if first:
            masks = context.closure_counted([initial_mask], first)
            needed = len(first)
        else:
            masks = [entering[1]]
            needed = 0
        swept = _sweep_masks(
            context, classes, 1, end, masks, needed, required.get, entering
        )
        self._entering = entering
        if swept is None:
            # Some position was unreachable in the base context; every
            # later ``entering`` slot stays 0 and no branch can accept.
            self._final_masks = [0]
            self._final_needed = 0
        else:
            self._final_masks, self._final_needed = swept

    def accepts_null(self) -> bool:
        """The verdict for ``µ[x → ⊥]`` — the base sweep's own acceptance."""
        if not self.valid:
            return False
        tail = len(self._required.get(self.end, _NO_OPS))
        if tail != self._final_needed:
            return False
        return bool((self._final_masks[tail] >> self.cva.final) & 1)

    def accepts_span(self, span: Span) -> bool:
        """The verdict for ``µ[x → span]``, resumed from the shared prefix."""
        if not self.valid:
            return False
        i, j = span.begin, span.end
        if i < 1 or j > self.end or self.variable not in self.cva.variables:
            return False
        entering = self._entering[i]
        if not entering:
            return False
        context, classes = self._context, self._classes
        required = self._required
        end = self.end
        open_at, close_at = self._open_key, self._close_key

        def required_at(pos: int) -> frozenset:
            base = required.get(pos, _NO_OPS)
            if pos != i and pos != j:
                return base
            extra = set(base)
            if pos == i:
                extra.add(open_at)
            if pos == j:
                extra.add(close_at)
            return frozenset(extra)

        first = required_at(i)
        masks = context.closure_counted([entering], first)
        swept = _sweep_masks(
            context, classes, i, end, masks, len(first), required_at
        )
        if swept is None:
            return False
        masks, needed = swept
        return bool((masks[needed] >> self.cva.final) & 1)


def node_sweep(
    cva: CompiledVA,
    text: str,
    base,
    variable: Variable,
    classes: "tuple[int, ...] | None" = None,
):
    """The sequential enumeration-node oracle: kernel path when enabled."""
    kernel = cva.kernel_or_none()
    if kernel is not None:
        return KernelNodeSweep(cva, text, base, variable, kernel, classes)
    return NodeSweep(cva, text, base, variable)


class GeneralNode:
    """Per-node oracle for non-sequential automata (full sweep per branch)."""

    __slots__ = ("cva", "text", "base", "variable")

    def __init__(self, cva: CompiledVA, text: str, base, variable: Variable) -> None:
        self.cva = cva
        self.text = text
        self.base = base
        self.variable = variable

    def accepts_null(self) -> bool:
        pinned = dict(self.base)
        pinned[self.variable] = NULL
        return eval_general_compiled(self.cva, self.text, pinned)

    def accepts_span(self, span: Span) -> bool:
        pinned = dict(self.base)
        pinned[self.variable] = span
        return eval_general_compiled(self.cva, self.text, pinned)
