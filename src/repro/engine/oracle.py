"""Compiled, memoised ``Eval`` oracles (Theorems 5.7 / 5.10 on tables).

Two layers:

* :func:`eval_compiled` — a drop-in for
  :func:`repro.evaluation.eval_problem.eval_va` that runs the same position
  sweeps over :class:`~repro.engine.tables.CompiledVA` tables.  Sequentiality
  is decided once at compile time instead of per oracle call, and the letter
  step is a memoised table lookup.

* :class:`NodeSweep` — the enumeration-time oracle for one recursion node of
  Algorithm 2.  A node fixes a base extended mapping ``µ`` and refines one
  variable ``x``; its sibling branches ``µ[x → (i, j)]`` share the entire
  sweep prefix below position ``i`` (their requirement profiles agree on
  every earlier position, and ``x`` is classified identically everywhere but
  ``i`` and ``j``).  ``NodeSweep`` runs that shared prefix once, records the
  state-set entering every position, and answers each sibling query by
  resuming from the recorded set — turning the seed's ``O(|d|)`` sweep per
  candidate into ``O(|d| - i)`` with the prefix amortised across siblings.

On kernel-enabled automata the sequential sweeps run over the bitmask
kernel (:mod:`repro.engine.kernel`): state sets are ints, the per-count
buckets of the requirement-tracking closure are per-count masks, and
positions without required operations are single lazy-DFA dict hits
shared across every oracle call on the same automaton.
:func:`eval_sequential_sets` and the set-based :class:`NodeSweep` remain
as the fallback path and the cross-validation baseline; the general
(FPT) sweep of Theorem 5.10 is always set-based — its simulation states
carry performed-sets and status vectors that do not pack into per-state
bits.
"""

from __future__ import annotations

from repro.engine.kernel import FlatOverflow, Kernel
from repro.engine.tables import CompiledVA, close_key, open_key
from repro.spans.mapping import NULL, ExtendedMapping, Variable
from repro.spans.span import Span

_NO_OPS: frozenset = frozenset()

_FRESH, _OPEN, _DONE = range(3)


class Requirements:
    """Pinned operations bucketed by position (compiled ``_Requirements``)."""

    __slots__ = ("valid", "required", "pinned", "nulls")

    def __init__(self, cva: CompiledVA, end: int, pinned) -> None:
        self.valid = True
        self.required: dict[int, frozenset] = {}
        self.pinned: set[Variable] = set()
        self.nulls: set[Variable] = set()
        automaton_variables = cva.variables
        accumulated: dict[int, set] = {}
        for variable, value in pinned.items():
            if value is NULL:
                self.nulls.add(variable)
                continue
            if (
                variable not in automaton_variables
                or value.begin < 1
                or value.end > end
            ):
                self.valid = False  # no run can ever satisfy this pin
                return
            self.pinned.add(variable)
            accumulated.setdefault(value.begin, set()).add(open_key(variable))
            accumulated.setdefault(value.end, set()).add(close_key(variable))
        self.required = {pos: frozenset(ops) for pos, ops in accumulated.items()}

    def at(self, pos: int) -> frozenset:
        return self.required.get(pos, _NO_OPS)


def _closure(cva: CompiledVA, seeds, required: frozenset, pinned, nulls):
    """Saturate ε/operation moves at one position (count-tracking form)."""
    out = set(seeds)
    frontier = list(out)
    total = len(required)
    eps, opens, closes = cva.eps, cva.opens, cva.closes
    while frontier:
        state, count = frontier.pop()
        for target in eps[state]:
            nxt = (target, count)
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)
        for kind, table in (("o", opens), ("c", closes)):
            for variable, target in table[state]:
                if variable in nulls:
                    # ⊥-pin: the open stays available (a dangling open leaves
                    # the variable unused), only the close is forbidden.
                    if kind == "c":
                        continue
                    nxt = (target, count)
                elif variable in pinned:
                    if (kind, variable) not in required or count >= total:
                        continue
                    nxt = (target, count + 1)
                else:
                    nxt = (target, count)
                if nxt not in out:
                    out.add(nxt)
                    frontier.append(nxt)
    return out


def _advance(cva: CompiledVA, current, letter: str, needed: int):
    """Letter step: keep runs that performed every required op, reset counts."""
    seeds = set()
    step = cva.step
    for state, count in current:
        if count != needed:
            continue
        for target in step(state, letter):
            seeds.add((target, 0))
    return seeds


def eval_sequential_sets(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.7's sweep over compiled tables (set-based fallback)."""
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    pinned_set, nulls = requirements.pinned, requirements.nulls
    current = _closure(
        cva, {(cva.initial, 0)}, requirements.at(1), pinned_set, nulls
    )
    for pos in range(1, end):
        seeds = _advance(cva, current, text[pos - 1], len(requirements.at(pos)))
        if not seeds:
            return False
        current = _closure(cva, seeds, requirements.at(pos + 1), pinned_set, nulls)
    return (cva.final, len(requirements.at(end))) in current


def _sweep_masks(context, classes, start, end, masks, needed, required_at, entering=None):
    """Advance per-count masks from position ``start`` up to ``end``.

    The one copy of the kernel sweep loop shared by the ``Eval`` oracle
    and both phases of :class:`KernelNodeSweep`.  ``masks``/``needed``
    are the closure at ``start`` (``masks[needed]`` is the live set);
    ``required_at(pos)`` yields the required-op set entering ``pos``
    (falsy for none — the memoised lazy-DFA fast path).  When
    ``entering`` is given, the count-0 closed mask entering every swept
    position is recorded into it.  Returns the final ``(masks, needed)``
    pair, or ``None`` once no run survives.
    """
    for pos in range(start, end):
        mask = masks[needed]
        if not mask:
            return None
        class_id = classes[pos - 1]
        upcoming = required_at(pos + 1)
        if upcoming:
            seeds = context.letter(mask, class_id)
            masks = context.closure_counted([seeds], upcoming) if seeds else None
            if entering is not None:
                entering[pos + 1] = masks[0] if masks else 0
            if masks is None:
                return None
            needed = len(upcoming)
        else:
            mask = context.delta_step(mask, class_id)
            if entering is not None:
                entering[pos + 1] = mask
            if not mask:
                return None
            masks = [mask]
            needed = 0
    return masks, needed


def eval_sequential_kernel(
    cva: CompiledVA,
    text: str,
    pinned,
    kernel: Kernel | None = None,
    classes: "tuple[int, ...] | None" = None,
) -> bool:
    """Theorem 5.7's sweep over the bitmask kernel.

    The requirement-tracking state sets become per-count masks; positions
    with no required operations (all but the ≤ 2k pinned-span endpoints)
    are one memoised lazy-DFA transition each.
    """
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    if kernel is None:
        kernel = cva.kernel
    context = kernel.context(
        frozenset(requirements.pinned), frozenset(requirements.nulls)
    )
    if classes is None:
        classes = kernel.intern(text)
    required = requirements.required
    first = required.get(1)
    initial_mask = 1 << cva.initial
    if first:
        masks = context.closure_counted([initial_mask], first)
        needed = len(first)
    else:
        masks = [context.close(initial_mask)]
        needed = 0
    swept = _sweep_masks(context, classes, 1, end, masks, needed, required.get)
    if swept is None:
        return False
    masks, needed = swept
    return bool((masks[needed] >> cva.final) & 1)


def _flat_sweep(fdfa, context, classes, start, end, masks, needed, required, entering=None):
    """Advance per-count masks from ``start`` to ``end`` on the flat DFA.

    The flat twin of :func:`_sweep_masks`: positions with required
    operations (the sorted keys of the ``required`` dict in
    ``(start, end]``) are handled exactly like the dict path — raw
    letter step, counted closure — while every run of plain positions
    between them is walked on the interned DFA: two indexed loads per
    character, re-interning the live mask only when re-entering from a
    counted closure.  Verdicts match :func:`_sweep_masks` bit for bit;
    the recorded ``entering`` slots hold interned *state ids* (resolve
    through ``fdfa.masks``; id 0 is the dead mask, so the 0-then-stop
    dead convention carries over).  A state-table overflow raises
    :class:`~repro.engine.kernel.FlatOverflow` for the caller to fall
    back.
    """
    if start >= end:
        return masks, needed
    if not masks[needed]:
        return None
    if required:
        points = sorted(pos for pos in required if start < pos <= end)
    else:
        points = []
    points.append(end + 1)  # sentinel: a final plain run to ``end``
    rows = fdfa.rows
    state_masks = fdfa.masks
    explore = fdfa.explore
    pos = start
    state = fdfa.intern(masks[needed])
    for point in points:
        limit = point - 1 if point <= end else end
        if pos < limit:
            row = rows[state]
            if entering is None:
                for class_id in classes[pos - 1 : limit - 1]:
                    target = row[class_id]
                    if target < 0:
                        target = explore(state, class_id)
                    if not target:
                        return None
                    state = target
                    row = rows[target]
            else:
                for ahead, class_id in enumerate(classes[pos - 1 : limit - 1], pos + 1):
                    target = row[class_id]
                    if target < 0:
                        target = explore(state, class_id)
                    entering[ahead] = target
                    if not target:
                        return None
                    state = target
                    row = rows[target]
            pos = limit
        if point > end:
            return [state_masks[state]], 0
        # Counted landing at ``point``: raw letter step off the live mask,
        # then the requirement-tracking closure — same as the dict path.
        upcoming = required[point]
        seeds = context.letter(state_masks[state], classes[point - 2])
        masks = context.closure_counted([seeds], upcoming) if seeds else None
        if entering is not None:
            entering[point] = fdfa.intern(masks[0]) if masks else 0
        if masks is None:
            return None
        needed = len(upcoming)
        if point == end:
            return masks, needed
        pos = point
        live = masks[needed]
        if not live:
            return None
        state = fdfa.intern(live)
    raise AssertionError("unreachable: the sentinel point always returns")


def eval_sequential_flat(
    cva: CompiledVA,
    text: str,
    pinned,
    kernel: Kernel,
    flat,
    classes=None,
) -> bool:
    """Theorem 5.7's sweep over the flat tables.

    May raise :class:`~repro.engine.kernel.FlatOverflow`; callers fall
    back to :func:`eval_sequential_kernel` (same verdicts, dict memo).
    """
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    context = kernel.context(
        frozenset(requirements.pinned), frozenset(requirements.nulls)
    )
    if classes is None:
        classes = flat.intern(text)
    fdfa = flat.context(context)
    required = requirements.required
    first = required.get(1)
    initial_mask = 1 << cva.initial
    if first:
        masks = context.closure_counted([initial_mask], first)
        needed = len(first)
    else:
        masks = [context.close(initial_mask)]
        needed = 0
    swept = _flat_sweep(fdfa, context, classes, 1, end, masks, needed, required)
    if swept is None:
        return False
    masks, needed = swept
    return bool((masks[needed] >> cva.final) & 1)


def eval_sequential_compiled(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.7's sweep: flat tables, then the dict kernel, then sets."""
    kernel = cva.kernel_or_none()
    if kernel is None:
        return eval_sequential_sets(cva, text, pinned)
    flat = kernel.flat_or_none()
    if flat is not None:
        try:
            return eval_sequential_flat(cva, text, pinned, kernel, flat)
        except FlatOverflow:
            pass
    return eval_sequential_kernel(cva, text, pinned, kernel)


def _general_closure(cva: CompiledVA, seeds, required: frozenset, pinned, nulls, index):
    """Theorem 5.10's closure: performed-set plus free-variable statuses."""
    out = set(seeds)
    frontier = list(out)
    eps, opens, closes = cva.eps, cva.opens, cva.closes
    while frontier:
        state, done, statuses = frontier.pop()
        for target in eps[state]:
            nxt = (target, done, statuses)
            if nxt not in out:
                out.add(nxt)
                frontier.append(nxt)
        for kind, table, before, after in (
            ("o", opens, _FRESH, _OPEN),
            ("c", closes, _OPEN, _DONE),
        ):
            for variable, target in table[state]:
                if variable in nulls and kind == "c":
                    # ⊥-pin: the close would assign the variable; the open
                    # stays available and is status-tracked like a free one.
                    continue
                if variable in pinned:
                    key = (kind, variable)
                    if key in done or key not in required:
                        continue
                    if (
                        kind == "c"
                        and ("o", variable) in required
                        and ("o", variable) not in done
                    ):
                        # Empty pinned span: the open must precede the close
                        # within this position for the run to be valid.
                        continue
                    nxt = (target, done | {key}, statuses)
                else:
                    i = index[variable]
                    if statuses[i] != before:
                        continue
                    nxt = (
                        target,
                        done,
                        statuses[:i] + (after,) + statuses[i + 1 :],
                    )
                if nxt not in out:
                    out.add(nxt)
                    frontier.append(nxt)
    return out


def eval_general_compiled(cva: CompiledVA, text: str, pinned) -> bool:
    """Theorem 5.10's FPT sweep over compiled tables."""
    end = len(text) + 1
    requirements = Requirements(cva, end, pinned)
    if not requirements.valid:
        return False
    pinned_set, nulls = requirements.pinned, requirements.nulls
    # ⊥-pinned variables stay status-tracked (opens may fire at most once on
    # a run); only span-pinned variables leave the status vector.
    free_variables = tuple(sorted(cva.mentioned_variables - pinned_set))
    index = {variable: i for i, variable in enumerate(free_variables)}
    initial = (cva.initial, _NO_OPS, (_FRESH,) * len(free_variables))
    current = _general_closure(
        cva, {initial}, requirements.at(1), pinned_set, nulls, index
    )
    for pos in range(1, end):
        required = requirements.at(pos)
        letter = text[pos - 1]
        seeds = set()
        step = cva.step
        for state, done, statuses in current:
            if done != required:
                continue
            for target in step(state, letter):
                seeds.add((target, _NO_OPS, statuses))
        if not seeds:
            return False
        current = _general_closure(
            cva, seeds, requirements.at(pos + 1), pinned_set, nulls, index
        )
    required = requirements.at(end)
    final = cva.final
    return any(
        state == final and done == required for state, done, _ in current
    )


def eval_compiled(cva: CompiledVA, text: str, pinned: ExtendedMapping) -> bool:
    """``Eval[VA]`` on compiled tables (sequentiality decided at compile time).

    ``pinned`` constrains the output mapping: a span value pins the
    assignment, ``⊥`` (:data:`~repro.spans.mapping.NULL`) pins the
    variable *unassigned*, absence leaves it unconstrained.

    >>> from repro.engine.tables import compile_va
    >>> from repro.spanner import Spanner
    >>> cva = compile_va(Spanner.compile("x{a}(y{b}|ε)c*").automaton)
    >>> eval_compiled(cva, "ac", ExtendedMapping({"y": NULL}))
    True
    >>> eval_compiled(cva, "ab", ExtendedMapping({"y": NULL}))
    False
    """
    if cva.is_sequential:
        return eval_sequential_compiled(cva, text, pinned)
    return eval_general_compiled(cva, text, pinned)


class NodeSweep:
    """Sibling-sharing oracle for one recursion node (sequential automata).

    The base context pins every previously fixed variable and treats the
    refined variable ``x`` as *operation-less pinned* — classified exactly
    like ``x → ⊥``, so the base sweep simultaneously answers the ``⊥``
    branch and provides correct entry state-sets for every span branch.
    """

    __slots__ = (
        "cva",
        "text",
        "end",
        "variable",
        "valid",
        "_requirements",
        "_pinned",
        "_nulls",
        "_entering",
        "_final_states",
        "_open_key",
        "_close_key",
    )

    def __init__(self, cva: CompiledVA, text: str, base, variable: Variable) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.variable = variable
        requirements = Requirements(cva, self.end, base)
        self.valid = requirements.valid
        self._requirements = requirements
        self._entering: list = []
        self._final_states = None
        self._open_key = open_key(variable)
        self._close_key = close_key(variable)
        if not self.valid:
            return
        # x joins the pinned set with no required ops anywhere: forbidden at
        # every position, exactly like the ⊥ pin, so the prefix state-sets
        # are shared verbatim by every sibling branch.
        self._pinned = requirements.pinned | {variable}
        self._nulls = requirements.nulls
        self._run_base()

    def _run_base(self) -> None:
        cva, text, end = self.cva, self.text, self.end
        requirements = self._requirements
        entering: list = [None] * (end + 1)
        entering[1] = {(cva.initial, 0)}
        current = _closure(
            cva, entering[1], requirements.at(1), self._pinned, self._nulls
        )
        for pos in range(1, end):
            seeds = _advance(
                cva, current, text[pos - 1], len(requirements.at(pos))
            )
            entering[pos + 1] = seeds
            if not seeds:
                # Every later position is unreachable in the base context.
                for later in range(pos + 2, end + 1):
                    entering[later] = seeds
                self._entering = entering
                self._final_states = frozenset()
                return
            current = _closure(
                cva, seeds, requirements.at(pos + 1), self._pinned, self._nulls
            )
        self._entering = entering
        self._final_states = current

    def accepts_null(self) -> bool:
        """The verdict for ``µ[x → ⊥]`` — the base sweep's own acceptance."""
        if not self.valid:
            return False
        return (self.cva.final, len(self._requirements.at(self.end))) in self._final_states

    def accepts_span(self, span: Span) -> bool:
        """The verdict for ``µ[x → span]``, resumed from the shared prefix."""
        if not self.valid:
            return False
        i, j = span.begin, span.end
        if i < 1 or j > self.end or self.variable not in self.cva.variables:
            return False
        entering = self._entering[i]
        if not entering:
            return False
        cva, text, end = self.cva, self.text, self.end
        requirements = self._requirements

        def required_at(pos: int) -> frozenset:
            base = requirements.at(pos)
            if pos != i and pos != j:
                return base
            extra = set(base)
            if pos == i:
                extra.add(self._open_key)
            if pos == j:
                extra.add(self._close_key)
            return frozenset(extra)

        current = _closure(cva, entering, required_at(i), self._pinned, self._nulls)
        for pos in range(i, end):
            seeds = _advance(cva, current, text[pos - 1], len(required_at(pos)))
            if not seeds:
                return False
            current = _closure(
                cva, seeds, required_at(pos + 1), self._pinned, self._nulls
            )
        return (cva.final, len(required_at(end))) in current


class KernelNodeSweep:
    """The :class:`NodeSweep` oracle over the bitmask kernel.

    Same prefix-sharing contract: the base sweep (one lazy-DFA hit per
    position) records the count-0 closed mask *entering* every position,
    and each sibling span ``(i, j)`` resumes from position ``i`` with the
    open/close requirements spliced in — base closure is idempotent, so
    resuming from the closed mask is equivalent to resuming from the raw
    seeds the set-based sweep records.
    """

    __slots__ = (
        "cva",
        "text",
        "end",
        "variable",
        "valid",
        "_context",
        "_classes",
        "_required",
        "_entering",
        "_final_masks",
        "_final_needed",
        "_open_key",
        "_close_key",
    )

    def __init__(
        self,
        cva: CompiledVA,
        text: str,
        base,
        variable: Variable,
        kernel: Kernel | None = None,
        classes: "tuple[int, ...] | None" = None,
    ) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.variable = variable
        requirements = Requirements(cva, self.end, base)
        self.valid = requirements.valid
        self._open_key = open_key(variable)
        self._close_key = close_key(variable)
        if not self.valid:
            return
        if kernel is None:
            kernel = cva.kernel
        # x joins the pinned set with no required ops anywhere: forbidden at
        # every position, exactly like the ⊥ pin, so the prefix masks are
        # shared verbatim by every sibling branch.
        self._context = kernel.context(
            frozenset(requirements.pinned | {variable}),
            frozenset(requirements.nulls),
        )
        self._classes = kernel.intern(text) if classes is None else classes
        self._required = requirements.required
        self._run_base()

    def _run_base(self) -> None:
        context, classes = self._context, self._classes
        required = self._required
        end = self.end
        entering = [0] * (end + 1)
        initial_mask = 1 << self.cva.initial
        entering[1] = context.close(initial_mask)
        first = required.get(1)
        if first:
            masks = context.closure_counted([initial_mask], first)
            needed = len(first)
        else:
            masks = [entering[1]]
            needed = 0
        swept = _sweep_masks(
            context, classes, 1, end, masks, needed, required.get, entering
        )
        self._entering = entering
        if swept is None:
            # Some position was unreachable in the base context; every
            # later ``entering`` slot stays 0 and no branch can accept.
            self._final_masks = [0]
            self._final_needed = 0
        else:
            self._final_masks, self._final_needed = swept

    def accepts_null(self) -> bool:
        """The verdict for ``µ[x → ⊥]`` — the base sweep's own acceptance."""
        if not self.valid:
            return False
        tail = len(self._required.get(self.end, _NO_OPS))
        if tail != self._final_needed:
            return False
        return bool((self._final_masks[tail] >> self.cva.final) & 1)

    def accepts_span(self, span: Span) -> bool:
        """The verdict for ``µ[x → span]``, resumed from the shared prefix."""
        if not self.valid:
            return False
        i, j = span.begin, span.end
        if i < 1 or j > self.end or self.variable not in self.cva.variables:
            return False
        entering = self._entering[i]
        if not entering:
            return False
        context, classes = self._context, self._classes
        required = self._required
        end = self.end
        open_at, close_at = self._open_key, self._close_key

        def required_at(pos: int) -> frozenset:
            base = required.get(pos, _NO_OPS)
            if pos != i and pos != j:
                return base
            extra = set(base)
            if pos == i:
                extra.add(open_at)
            if pos == j:
                extra.add(close_at)
            return frozenset(extra)

        first = required_at(i)
        masks = context.closure_counted([entering], first)
        swept = _sweep_masks(
            context, classes, i, end, masks, len(first), required_at
        )
        if swept is None:
            return False
        masks, needed = swept
        return bool((masks[needed] >> self.cva.final) & 1)


class FlatNodeSweep:
    """The :class:`NodeSweep` oracle over the flat tables.

    Same prefix-sharing contract as :class:`KernelNodeSweep` — the base
    sweep records the count-0 closed mask entering every position, each
    sibling span resumes from position ``i`` with the open/close
    requirements spliced in — but plain positions walk the interned flat
    DFA, and the sharing goes two levels deeper:

    * for a fixed open position ``i``, one *open sweep* (the open
      spliced at ``i``) records the masks entering every later position,
      so each sibling close position ``j`` resumes from a recorded mask
      instead of re-sweeping ``i..j`` (the candidate-span list is
      ``i``-major, so this cache hits);
    * one *backward co-acceptance sweep* per node records, for every
      position ``j``, the states that can still complete the suffix
      ``j..end`` under the base requirements — so the run from ``j`` to
      ``end`` that both dict-path resumes repeat per span collapses to a
      single mask intersection.  Forward masks are closed under the
      context's free moves and the backward masks are closed under their
      reversal, so a non-empty intersection is exactly suffix
      acceptance.

    A span verdict is then one counted closure plus two table lookups;
    a rejected span usually costs a single list lookup (its recorded
    open-sweep mask is 0).  A state-table overflow during construction
    propagates (:func:`node_sweep` falls back to a
    :class:`KernelNodeSweep`); an overflow during a span query is
    absorbed by delegating that node to a lazily built dict-kernel twin,
    so callers never see it.
    """

    __slots__ = (
        "cva",
        "text",
        "end",
        "variable",
        "valid",
        "_kernel",
        "_context",
        "_fdfa",
        "_classes",
        "_base",
        "_required",
        "_entering",
        "_final_masks",
        "_final_needed",
        "_open_key",
        "_close_key",
        "_open_at",
        "_open_entering",
        "_open_pos",
        "_open_state",
        "_flat",
        "_coaccept_masks",
        "_coaccept_table",
        "_fallback",
    )

    def __init__(
        self,
        cva: CompiledVA,
        text: str,
        base,
        variable: Variable,
        kernel: Kernel,
        flat,
        classes=None,
    ) -> None:
        self.cva = cva
        self.text = text
        self.end = len(text) + 1
        self.variable = variable
        requirements = Requirements(cva, self.end, base)
        self.valid = requirements.valid
        self._open_key = open_key(variable)
        self._close_key = close_key(variable)
        self._open_at = 0  # position of the cached open sweep (0 = none)
        self._open_entering: list[int] | None = None
        self._coaccept_masks: list[int] | None = None
        self._coaccept_table: list[int] | None = None
        self._fallback: KernelNodeSweep | None = None
        if not self.valid:
            return
        self._kernel = kernel
        self._base = base
        self._flat = flat
        self._context = kernel.context(
            frozenset(requirements.pinned | {variable}),
            frozenset(requirements.nulls),
        )
        self._classes = flat.intern(text) if classes is None else classes
        self._fdfa = flat.context(self._context)
        self._required = requirements.required
        self._run_base()

    def _run_base(self) -> None:
        context, classes = self._context, self._classes
        required = self._required
        end = self.end
        entering = [0] * (end + 1)
        initial_mask = 1 << self.cva.initial
        closed = context.close(initial_mask)
        entering[1] = self._fdfa.intern(closed)
        first = required.get(1)
        if first:
            masks = context.closure_counted([initial_mask], first)
            needed = len(first)
        else:
            masks = [closed]
            needed = 0
        swept = _flat_sweep(
            self._fdfa, context, classes, 1, end, masks, needed, required, entering
        )
        self._entering = entering
        if swept is None:
            self._final_masks = [0]
            self._final_needed = 0
        else:
            self._final_masks, self._final_needed = swept

    def _dict_twin(self) -> "KernelNodeSweep":
        """The dict-kernel twin of this node (flat-DFA overflow escape)."""
        if self._fallback is None:
            self._fallback = KernelNodeSweep(
                self.cva,
                self.text,
                self._base,
                self.variable,
                self._kernel,
                self._classes,
            )
        return self._fallback

    def accepts_null(self) -> bool:
        """The verdict for ``µ[x → ⊥]`` — the base sweep's own acceptance."""
        if not self.valid:
            return False
        tail = len(self._required.get(self.end, _NO_OPS))
        if tail != self._final_needed:
            return False
        return bool((self._final_masks[tail] >> self.cva.final) & 1)

    def _open_sweep(self, i: int, j: int) -> list[int]:
        """Masks entering positions ``(i, j]`` after splicing the open at ``i``.

        One sweep per distinct ``i``, cached and extended *lazily*: the
        candidate-span list is ``i``-major, so sibling close positions
        hit the cache, and the walk only ever advances to the largest
        ``j`` queried — candidate spans are usually short, so this stays
        far from ``end``.  Slot ``j`` holds the interned id of the
        count-0 closed mask entering ``j`` for runs that satisfied the
        base requirements *and* opened ``x`` at ``i`` (0 = no such run,
        so the span ``(i, j)`` is rejected for free).
        """
        fdfa = self._fdfa
        if self._open_at != i:
            ops = self._required.get(i, _NO_OPS) | {self._open_key}
            masks = self._context.closure_counted(
                [fdfa.masks[self._entering[i]]], ops
            )
            live = masks[len(ops)]
            self._open_at = i
            self._open_entering = [0] * (self.end + 1)
            self._open_pos = i
            self._open_state = fdfa.intern(live) if live else 0
        entering = self._open_entering
        pos = self._open_pos
        if pos >= j:
            return entering
        state = self._open_state
        if not state:
            return entering  # dead frontier: later slots stay 0
        rows, state_masks, explore = fdfa.rows, fdfa.masks, fdfa.explore
        context, classes = self._context, self._classes
        required = self._required
        while pos < j and state:
            ahead = pos + 1
            ops = required.get(ahead)
            if ops is None:
                class_id = classes[pos - 1]
                target = rows[state][class_id]
                if target < 0:
                    target = explore(state, class_id)
                entering[ahead] = target
                state = target
            else:
                seeds = context.letter(state_masks[state], classes[pos - 1])
                if seeds:
                    masks = context.closure_counted([seeds], ops)
                    entering[ahead] = fdfa.intern(masks[0])
                    live = masks[len(ops)]
                    state = fdfa.intern(live) if live else 0
                else:
                    state = 0
            pos = ahead
        self._open_pos = pos
        self._open_state = state
        return entering

    def _coaccept(self) -> list[int]:
        """Co-acceptance ids: slot ``j`` interns the states (post-closure
        at ``j``, all of ``j``'s operations done) from which the suffix
        ``j..end`` still accepts under the base requirements.

        One backward sweep per node, computed on the first span query:
        plain positions walk the reverse flat DFA, required positions
        run the backward counted closure (op edges traversed target →
        source).  The masks come out closed under the reverse free
        moves, which is what makes the forward/backward intersection
        test exact: a forward-closed live mask meets slot ``j`` iff it
        meets the raw co-acceptance set.  Resolve ids through
        ``_coaccept_table`` (the reverse DFA's mask list).
        """
        w = self._coaccept_masks
        if w is not None:
            return w
        context, classes = self._context, self._classes
        end = self.end
        required = self._required
        w = [0] * (end + 1)
        final_mask = 1 << self.cva.final
        tail = required.get(end)
        if tail:
            levels = context.closure_counted_rev([final_mask], tail)
            current = levels[len(tail)]
        else:
            current = context.close_rev(final_mask)
        fdfa = self._flat.context_rev(context)
        self._coaccept_table = fdfa.masks
        state_masks = fdfa.masks
        rows = fdfa.rows
        explore = fdfa.explore
        state = fdfa.intern(current)
        points = [p for p in sorted(required, reverse=True) if p < end]
        points.append(0)  # sentinel: a final plain run down to position 1
        position = end - 1
        for point in points:
            row = rows[state] if state else None
            while position > point and state:
                # Plain position: one reverse-DFA step is the whole
                # letter-then-closure composite, and its id is both the
                # recorded slot and the continuation.
                class_id = classes[position - 1]
                target = row[class_id]
                if target < 0:
                    target = explore(state, class_id)
                w[position] = target
                state = target
                row = rows[target]
                position -= 1
            if not state or not point:
                break
            seeds = context.letter_rev(state_masks[state], classes[point - 1])
            if not seeds:
                break
            ops = required[point]
            levels = context.closure_counted_rev([seeds], ops)
            # Level 0 is the closed co-acceptance slot (the span's own
            # ops fire forward, in the resume's counted closure); the
            # top level carries the base ops backward.
            w[point] = fdfa.intern(levels[0])
            top = levels[len(ops)]
            state = fdfa.intern(top) if top else 0
            position = point - 1
        self._coaccept_masks = w
        return w

    def accepts_span(self, span: Span) -> bool:
        """The verdict for ``µ[x → span]``, resumed from the shared prefix."""
        if not self.valid:
            return False
        i, j = span.begin, span.end
        if i < 1 or j > self.end or self.variable not in self.cva.variables:
            return False
        entering = self._entering[i]
        if not entering:
            return False
        context = self._context
        required = self._required
        state_masks = self._fdfa.masks
        try:
            if i == j:
                # Empty span: both operations splice into one position's
                # counted closure, resumed from the base entering mask.
                ops = required.get(i, _NO_OPS) | {self._open_key, self._close_key}
                levels = context.closure_counted([state_masks[entering]], ops)
            else:
                opened = self._open_sweep(i, j)[j]
                if not opened:
                    return False
                # Resume at ``j``: the close joins whatever base operations
                # ``j`` already requires (closure idempotence makes resuming
                # from the recorded closed mask exact, as at the node level).
                ops = required.get(j, _NO_OPS) | {self._close_key}
                levels = context.closure_counted([state_masks[opened]], ops)
            live = levels[len(ops)]
            if not live:
                return False
            if j == self.end:
                return bool((live >> self.cva.final) & 1)
            coaccept = self._coaccept()[j]
            return bool(coaccept and live & self._coaccept_table[coaccept])
        except FlatOverflow:
            return self._dict_twin().accepts_span(span)


def node_sweep(
    cva: CompiledVA,
    text: str,
    base,
    variable: Variable,
    classes=None,
):
    """The sequential enumeration-node oracle: flat, dict kernel, or sets."""
    kernel = cva.kernel_or_none()
    if kernel is None:
        return NodeSweep(cva, text, base, variable)
    flat = kernel.flat_or_none()
    if flat is not None:
        try:
            return FlatNodeSweep(cva, text, base, variable, kernel, flat, classes)
        except FlatOverflow:
            pass
    return KernelNodeSweep(cva, text, base, variable, kernel, classes)


class GeneralNode:
    """Per-node oracle for non-sequential automata (full sweep per branch)."""

    __slots__ = ("cva", "text", "base", "variable")

    def __init__(self, cva: CompiledVA, text: str, base, variable: Variable) -> None:
        self.cva = cva
        self.text = text
        self.base = base
        self.variable = variable

    def accepts_null(self) -> bool:
        pinned = dict(self.base)
        pinned[self.variable] = NULL
        return eval_general_compiled(self.cva, self.text, pinned)

    def accepts_span(self, span: Span) -> bool:
        pinned = dict(self.base)
        pinned[self.variable] = span
        return eval_general_compiled(self.cva, self.text, pinned)
