"""Durable engine artifacts: zero-copy serialization of compiled engines.

A compiled engine is expensive to build — planning passes, transition
tables, the kernel's closure masks and class-major step tables — and
fully deterministic given the planned automaton.  This module persists
that work: :func:`serialize_engine` packs the post-plan automaton and
the kernel's mask tables into one versioned, checksummed byte blob, and
:func:`deserialize_engine` rebuilds a ready
:class:`~repro.engine.compiled.CompiledSpanner` from it without
re-planning or re-deriving any table.

Format (little-endian throughout)::

    offset  size  field
    0       4     magic  b"RPRA"
    4       4     format version (u32)
    8       32    SHA-256 of the payload
    40      8     payload length (u64)
    48      ...   payload

    payload := meta_len (u32) | meta JSON | pickled VA | mask blob

The meta JSON carries the automaton fingerprint, the alphabet-class
partition (``class_of``, residual, representatives), section sizes, and
the mask width.  The mask blob is the kernel's four tables — ``free``,
``free_rev``, then ``step`` and ``step_rev`` in class-major order, the
exact layout :class:`~repro.engine.kernel.FlatTables` flattens to — as
fixed-width little-endian masks.  For automata of at most 64 states
(``mask_width == 8``) loading is **zero-copy**: the blob is wrapped in a
``memoryview`` cast to ``Q`` and sliced per table, so an mmap'd artifact
shares pages with the OS cache instead of materialising Python ints.
Wider automata decode eagerly (``int.from_bytes`` per mask).

Every validation failure — bad magic, version or fingerprint mismatch,
truncation, checksum corruption, malformed meta — raises
:class:`ArtifactError`; callers (the
:class:`~repro.service.artifact_store.ArtifactStore`) treat any of them
as a cache miss and recompile.  Artifacts embed a pickle of the planned
automaton, so a cache directory must be trusted exactly like the
installed code itself — the checksum detects corruption, not tampering.

>>> from repro.engine.compiled import compile_spanner
>>> blob = serialize_engine(compile_spanner(".*x{a+}.*"))
>>> engine = deserialize_engine(blob)
>>> [m["x"].begin for m in engine.mappings("baa")]
[2, 2, 3]
"""

from __future__ import annotations

import hashlib
import json
import pickle

from repro.automata.fingerprint import va_fingerprint
from repro.engine.kernel import AlphabetClasses, Kernel
from repro.engine.tables import compile_va

MAGIC = b"RPRA"
FORMAT_VERSION = 1

_HEADER_LEN = 4 + 4 + 32 + 8

#: Mask width that takes the zero-copy ``memoryview.cast("Q")`` path.
_ZERO_COPY_WIDTH = 8


class ArtifactError(RuntimeError):
    """An artifact failed validation — treat as a miss and recompile."""


def _mask_width(num_states: int) -> int:
    """Bytes per serialized mask: 8 (zero-copy) for ≤64 states, else enough."""
    return max(_ZERO_COPY_WIDTH, (num_states + 7) // 8)


def serialize_engine(
    engine, opt_level: int | None = None, expression: str | None = None
) -> bytes:
    """The durable byte form of a compiled engine (forces the kernel build).

    ``opt_level`` and ``expression`` are advisory provenance recorded in
    the meta block (the artifact itself is keyed by the post-plan
    fingerprint, which already incorporates whatever the plan did);
    ``expression`` fills in when the engine does not carry pattern text.
    """
    cva = engine.tables
    kernel = cva.kernel
    classes = kernel.classes
    num_states = kernel.num_states
    num_classes = classes.count
    width = _mask_width(num_states)
    automaton = pickle.dumps(engine.automaton, protocol=pickle.HIGHEST_PROTOCOL)
    if not isinstance(expression, str):
        expression = (
            engine.expression if isinstance(engine.expression, str) else None
        )
    meta = {
        "fingerprint": engine.fingerprint,
        "expression": expression,
        "opt_level": opt_level,
        "source_sequential": engine.is_sequential,
        "num_states": num_states,
        "num_classes": num_classes,
        "residual": classes.residual,
        "class_of": classes._class_of,
        "representatives": list(classes.representatives),
        "mask_width": width,
        "pickle_len": len(automaton),
    }
    meta_blob = json.dumps(meta, separators=(",", ":"), sort_keys=True).encode()
    masks = bytearray()
    for table in (kernel.free, kernel.free_rev):
        for mask in table:
            masks += mask.to_bytes(width, "little")
    for step in (kernel.step, kernel.step_rev):
        for row in step:
            for mask in row:
                masks += mask.to_bytes(width, "little")
    payload = (
        len(meta_blob).to_bytes(4, "little") + meta_blob + automaton + masks
    )
    header = (
        MAGIC
        + FORMAT_VERSION.to_bytes(4, "little")
        + hashlib.sha256(payload).digest()
        + len(payload).to_bytes(8, "little")
    )
    return header + payload


def _mask_sections(buffer, offset: int, meta: dict):
    """The four kernel tables out of the mask blob (zero-copy when it fits)."""
    num_states = meta["num_states"]
    num_classes = meta["num_classes"]
    width = meta["mask_width"]
    total = 2 * num_states + 2 * num_classes * num_states
    if len(buffer) - offset != total * width:
        raise ArtifactError("artifact mask blob has the wrong length")
    if width == _ZERO_COPY_WIDTH:
        flat = memoryview(buffer)[offset:].cast("Q")
        cut = [0, num_states, 2 * num_states]
        for _ in range(2 * num_classes):
            cut.append(cut[-1] + num_states)
        parts = [flat[cut[i] : cut[i + 1]] for i in range(len(cut) - 1)]
    else:
        def unpack(index: int, count: int):
            start = offset + index * width
            return tuple(
                int.from_bytes(
                    buffer[start + i * width : start + (i + 1) * width], "little"
                )
                for i in range(count)
            )

        parts = [unpack(0, num_states), unpack(num_states, num_states)]
        position = 2 * num_states
        for _ in range(2 * num_classes):
            parts.append(unpack(position, num_states))
            position += num_states
    free, free_rev = parts[0], parts[1]
    step = tuple(parts[2 : 2 + num_classes])
    step_rev = tuple(parts[2 + num_classes :])
    return free, free_rev, step, step_rev


def deserialize_engine(buffer, expected_fingerprint: str | None = None):
    """Rebuild a :class:`~repro.engine.compiled.CompiledSpanner` from bytes.

    ``buffer`` may be any buffer-protocol object — in particular an
    ``mmap.mmap``, which the ≤64-state fast path slices without copying.
    Raises :class:`ArtifactError` on any validation failure.
    """
    from repro.engine.compiled import CompiledSpanner

    view = bytes(buffer[:_HEADER_LEN])
    if len(view) < _HEADER_LEN or view[:4] != MAGIC:
        raise ArtifactError("not an engine artifact (bad magic)")
    version = int.from_bytes(view[4:8], "little")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format v{version}, this build reads v{FORMAT_VERSION}"
        )
    declared = int.from_bytes(view[40:48], "little")
    payload = memoryview(buffer)[_HEADER_LEN:]
    if len(payload) != declared:
        raise ArtifactError("artifact payload truncated")
    if hashlib.sha256(payload).digest() != view[8:40]:
        raise ArtifactError("artifact checksum mismatch")
    try:
        meta_len = int.from_bytes(payload[:4], "little")
        meta = json.loads(bytes(payload[4 : 4 + meta_len]))
        pickle_end = 4 + meta_len + meta["pickle_len"]
        automaton = pickle.loads(bytes(payload[4 + meta_len : pickle_end]))
    except ArtifactError:
        raise
    except Exception as error:  # malformed meta/pickle despite checksum
        raise ArtifactError(f"artifact meta unreadable: {error}") from error
    fingerprint = meta.get("fingerprint")
    if expected_fingerprint is not None and fingerprint != expected_fingerprint:
        raise ArtifactError("artifact fingerprint does not match its key")
    if va_fingerprint(automaton) != fingerprint:
        raise ArtifactError("artifact automaton does not match its fingerprint")
    free, free_rev, step, step_rev = _mask_sections(
        payload, pickle_end, meta
    )
    classes = AlphabetClasses.from_parts(
        meta["class_of"],
        meta["residual"],
        meta["num_classes"],
        meta["representatives"],
    )
    cva = compile_va(automaton)
    if cva._kernel is None:
        cva._kernel = Kernel.from_tables(
            cva, classes, free, free_rev, step, step_rev
        )
    return CompiledSpanner(
        automaton=automaton,
        expression=meta.get("expression"),
        source_sequential=meta.get("source_sequential"),
    )


def artifact_meta(buffer) -> dict:
    """The meta block of an artifact, without rebuilding the engine.

    Validates the envelope (magic, version, checksum) only — used by the
    store's listing and stats paths.
    """
    view = bytes(buffer[:_HEADER_LEN])
    if len(view) < _HEADER_LEN or view[:4] != MAGIC:
        raise ArtifactError("not an engine artifact (bad magic)")
    version = int.from_bytes(view[4:8], "little")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact format v{version}, this build reads v{FORMAT_VERSION}"
        )
    declared = int.from_bytes(view[40:48], "little")
    payload = memoryview(buffer)[_HEADER_LEN:]
    if len(payload) != declared:
        raise ArtifactError("artifact payload truncated")
    if hashlib.sha256(payload).digest() != view[8:40]:
        raise ArtifactError("artifact checksum mismatch")
    try:
        meta_len = int.from_bytes(payload[:4], "little")
        return json.loads(bytes(payload[4 : 4 + meta_len]))
    except Exception as error:
        raise ArtifactError(f"artifact meta unreadable: {error}") from error
