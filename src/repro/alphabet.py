"""Character sets — the letter algebra shared by RGX and automata.

The paper fixes a finite alphabet ``Σ`` and writes expressions such as
``Σ* . Seller: . x{(Σ - {,})*}``.  To support both concrete letters and the
``Σ``/``Σ - S`` idioms without forcing users to declare alphabets up front,
letters in expressions and automaton transitions are :class:`CharSet`
predicates: either a finite set of characters, or the complement of one
(``negated=True``, i.e. ``Σ - S`` for an implicitly large ``Σ``).

Algorithms that must *enumerate* letters (satisfiability witnesses,
determinisation, containment) work over *representative atoms*: the finite
set of characters mentioned by any transition plus one fresh character that
stands for "every other letter".  Two characters not mentioned anywhere are
indistinguishable to every predicate, so one representative suffices — this
is the standard trick from symbolic automata, and it keeps the constructions
faithful to the paper's finite-``Σ`` setting.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.util.errors import SpannerError

#: Characters tried (in order) when a fresh representative is needed.
_FRESH_CANDIDATES = "~@0z"


@dataclass(frozen=True)
class CharSet:
    """A set of characters, finite (``negated=False``) or cofinite.

    ``CharSet(frozenset("ab"))`` matches ``a`` or ``b``;
    ``CharSet(frozenset(",\\n"), negated=True)`` matches any character except
    a comma or newline (the paper's ``Σ - {,, ↵}``).
    """

    chars: frozenset[str]
    negated: bool = False

    def __post_init__(self) -> None:
        for ch in self.chars:
            if len(ch) != 1:
                raise SpannerError(f"CharSet members must be single chars, got {ch!r}")
        if not self.negated and not self.chars:
            raise SpannerError("an empty positive CharSet matches nothing")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single(cls, char: str) -> "CharSet":
        """The singleton set ``{a}`` — an ordinary letter."""
        return cls(frozenset((char,)))

    @classmethod
    def of(cls, chars: Iterable[str]) -> "CharSet":
        """A finite set of letters."""
        return cls(frozenset(chars))

    @classmethod
    def excluding(cls, chars: Iterable[str]) -> "CharSet":
        """``Σ - chars`` — everything except the given letters."""
        return cls(frozenset(chars), negated=True)

    @classmethod
    def any(cls) -> "CharSet":
        """``Σ`` — any letter."""
        return cls(frozenset(), negated=True)

    # -- predicate ------------------------------------------------------------

    def contains(self, char: str) -> bool:
        if self.negated:
            return char not in self.chars
        return char in self.chars

    def is_single(self) -> bool:
        return not self.negated and len(self.chars) == 1

    def the_single(self) -> str:
        if not self.is_single():
            raise SpannerError(f"{self} is not a single letter")
        return next(iter(self.chars))

    # -- algebra ----------------------------------------------------------------

    def intersect(self, other: "CharSet") -> "CharSet | None":
        """The intersection, or ``None`` when it is empty."""
        if not self.negated and not other.negated:
            common = self.chars & other.chars
            return CharSet(common) if common else None
        if self.negated and other.negated:
            return CharSet(self.chars | other.chars, negated=True)
        positive, negative = (self, other) if not self.negated else (other, self)
        remaining = positive.chars - negative.chars
        return CharSet(remaining) if remaining else None

    def witness(self, avoid: Iterable[str] = ()) -> str:
        """Some character matched by this set (avoiding ``avoid`` if possible)."""
        avoid_set = set(avoid)
        if not self.negated:
            for ch in sorted(self.chars):
                if ch not in avoid_set:
                    return ch
            return next(iter(sorted(self.chars)))
        for ch in _FRESH_CANDIDATES:
            if ch not in self.chars and ch not in avoid_set:
                return ch
        code = 0x100
        while chr(code) in self.chars or chr(code) in avoid_set:
            code += 1
        return chr(code)

    def __str__(self) -> str:
        if self.negated:
            if not self.chars:
                return "."
            listed = "".join(sorted(self.chars))
            return f"[^{listed}]"
        if len(self.chars) == 1:
            return next(iter(self.chars))
        listed = "".join(sorted(self.chars))
        return f"[{listed}]"


def representative_alphabet(charsets: Iterable[CharSet]) -> list[str]:
    """Representative atoms for a family of character predicates.

    Returns every character explicitly mentioned by some predicate plus one
    fresh character standing for "any unmentioned letter".  Simulating an
    automaton on a representative is equivalent to simulating it on any
    character of the same atom, because predicates only test membership in
    the mentioned sets.
    """
    mentioned: set[str] = set()
    saw_cofinite = False
    for charset in charsets:
        mentioned |= charset.chars
        if charset.negated:
            saw_cofinite = True
    representatives = sorted(mentioned)
    if saw_cofinite or not representatives:
        fresh = CharSet.excluding(mentioned).witness()
        representatives.append(fresh)
    return representatives
