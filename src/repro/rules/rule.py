"""Extraction rules (paper, Section 3.3).

A rule has the shape (†)::

    ϕ = ϕ0 ∧ x1.ϕ1 ∧ ... ∧ xm.ϕm

where each ``ϕi`` is a spanRGX formula: ``ϕ0`` is evaluated against the
whole document, and ``xi.ϕi`` against the span captured by ``xi``.  The
mapping semantics handles nondeterminism through *instantiated variables*:
``ivar(ϕ, µ̄)`` is the least set containing ``dom(µ0)`` and closed under
"if ``xi`` is instantiated then ``dom(µi)`` is too"; conjuncts of
non-instantiated variables are vacuous.  A tuple ``(µ0, ..., µm)``
satisfies the rule when (1) ``µ0 ∈ ⟦ϕ0⟧_d``, (2) ``µi ∈ ⟦xi.ϕi⟧_d`` for
instantiated ``xi`` and ``µi = ∅`` otherwise, (3) the tuple is pairwise
compatible; the rule's output is the union of the tuple.

In the AST a bare rule variable ``x`` is represented as ``x{Σ*}``
(:func:`repro.rgx.ast.var`), exactly the shorthand the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rgx.ast import ANY_STAR, Rgx, VarBind, concat, var as var_binding
from repro.rgx.properties import is_functional, is_sequential, is_span_rgx
from repro.spans.document import Document, as_text
from repro.spans.mapping import Mapping, Variable
from repro.util.errors import RuleError

Conjunct = tuple[Variable, Rgx]


@dataclass(frozen=True)
class Rule:
    """An extraction rule ``ϕ0 ∧ x1.ϕ1 ∧ ... ∧ xm.ϕm``.

    ``conjuncts`` may repeat a head variable — that is precisely what
    distinguishes general rules from *simple* ones (Section 4.3).
    """

    root: Rgx
    conjuncts: tuple[Conjunct, ...] = ()
    check_span_rgx: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if self.check_span_rgx:
            for formula in self.formulas():
                if not is_span_rgx(formula):
                    raise RuleError(
                        f"rule formulas must be spanRGX, got {formula}"
                    )

    # -- inspection ------------------------------------------------------------

    def formulas(self) -> list[Rgx]:
        return [self.root] + [formula for _, formula in self.conjuncts]

    @property
    def heads(self) -> tuple[Variable, ...]:
        """The head variables ``x1, ..., xm`` in conjunct order."""
        return tuple(head for head, _ in self.conjuncts)

    def variables(self) -> frozenset[Variable]:
        """Every variable occurring anywhere in the rule."""
        collected = set(self.heads)
        for formula in self.formulas():
            collected |= formula.variables()
        return frozenset(collected)

    def is_simple(self) -> bool:
        """Simple rules: pairwise distinct head variables (Section 4.3)."""
        return len(set(self.heads)) == len(self.heads)

    def is_functional(self) -> bool:
        """All formulas functional — the premise of Theorem 4.7."""
        return all(is_functional(formula) for formula in self.formulas())

    def is_sequential(self) -> bool:
        """All formulas sequential — the premise of Theorem 5.9."""
        return all(is_sequential(formula) for formula in self.formulas())

    def normalized(self) -> "Rule":
        """Add ``x.Σ*`` for occurring variables without a conjunct.

        The appendix proofs assume every variable heads exactly one
        extraction expression; ``x.Σ*`` is vacuous, so this preserves the
        semantics.
        """
        present = set(self.heads)
        extra = [
            (variable, ANY_STAR)
            for variable in sorted(self.variables() - present)
        ]
        if not extra:
            return self
        return Rule(self.root, self.conjuncts + tuple(extra), self.check_span_rgx)

    def __str__(self) -> str:
        parts = [str(self.root)]
        parts.extend(f"{head}.({formula})" for head, formula in self.conjuncts)
        return " ∧ ".join(parts)

    # -- semantics -------------------------------------------------------------

    def evaluate(self, document: "Document | str") -> set[Mapping]:
        """``⟦ϕ⟧_d`` — the mapping semantics of Section 3.3.

        The search instantiates conjuncts lazily following the ivar
        closure; sets of candidate mappings per conjunct are computed with
        the automaton evaluator.  Worst-case exponential (Theorem 5.8 shows
        even emptiness is NP-hard); the tractable tree-like algorithm lives
        in :mod:`repro.evaluation.rules_eval`.
        """
        text = as_text(document)
        root_mappings = _formula_mappings(self.root, text)
        conjunct_mappings = [
            _conjunct_mappings(head, formula, text)
            for head, formula in self.conjuncts
        ]

        results: set[Mapping] = set()
        for mu0 in root_mappings:
            self._instantiate(
                mu0,
                self._initial_pending(mu0),
                frozenset(),
                conjunct_mappings,
                results,
            )
        return results

    def _initial_pending(self, mu0: Mapping) -> frozenset[int]:
        return frozenset(
            i for i, head in enumerate(self.heads) if head in mu0.domain
        )

    def _instantiate(
        self,
        merged: Mapping,
        pending: frozenset[int],
        done: frozenset[int],
        conjunct_mappings: list[set[Mapping]],
        results: set[Mapping],
    ) -> None:
        if not pending:
            results.add(merged)
            return
        index = min(pending)
        rest = pending - {index}
        for candidate in conjunct_mappings[index]:
            if not merged.compatible(candidate):
                continue
            combined = merged.union(candidate)
            newly = frozenset(
                i
                for i, head in enumerate(self.heads)
                if i not in done
                and i != index
                and i not in rest
                and head in combined.domain
            )
            self._instantiate(
                combined,
                rest | newly,
                done | {index},
                conjunct_mappings,
                results,
            )


def _formula_mappings(formula: Rgx, text: str) -> set[Mapping]:
    """``⟦ϕ⟧_d`` for a spanRGX formula, via the automaton evaluator."""
    from repro.automata.simulate import evaluate_va
    from repro.automata.thompson import to_va

    return evaluate_va(to_va(formula), text)


def _conjunct_mappings(head: Variable, formula: Rgx, text: str) -> set[Mapping]:
    """``⟦x.ϕ⟧_d = {µ | ∃s: (s, µ) ∈ [x{ϕ}]_d}``.

    Equal to ``⟦Σ* . x{ϕ} . Σ*⟧_d``: the padding walks to any span, and
    binds nothing itself.
    """
    from repro.automata.simulate import evaluate_va
    from repro.automata.thompson import to_va

    padded = concat(ANY_STAR, VarBind(head, formula), ANY_STAR)
    return evaluate_va(to_va(padded), text)


def rule(root: Rgx, *conjuncts: Conjunct) -> Rule:
    """Convenience constructor: ``rule(φ0, ("x", φx), ("y", φy))``."""
    return Rule(root, tuple(conjuncts))


def bare(variable: Variable) -> VarBind:
    """The rule shorthand ``x`` for ``x{Σ*}``."""
    return var_binding(variable)
