"""Extraction rules and their translations (paper §3.3 and §4.3)."""

from repro.rules.cycles import (
    auxiliary_variables,
    colour_nodes,
    nu,
    to_daglike,
    unsatisfiable_daglike_rule,
)
from repro.rules.graph import (
    DOC,
    is_dag_like,
    is_tree_like,
    prune_unreachable,
    reachable_heads,
    rule_graph,
)
from repro.rules.rule import Rule, bare, rule
from repro.rules.spanrgx import (
    PathForm,
    functional_decomposition,
    path_disjuncts,
)
from repro.rules.translate import (
    daglike_to_treelike,
    rgx_to_treelike_rules,
    to_functional_daglike,
    to_functional_rules,
    treelike_to_rgx,
    union_of_rules_to_rgx,
)

__all__ = [
    "DOC",
    "PathForm",
    "Rule",
    "auxiliary_variables",
    "bare",
    "colour_nodes",
    "daglike_to_treelike",
    "functional_decomposition",
    "is_dag_like",
    "is_tree_like",
    "nu",
    "path_disjuncts",
    "prune_unreachable",
    "reachable_heads",
    "rgx_to_treelike_rules",
    "rule",
    "rule_graph",
    "to_daglike",
    "to_functional_daglike",
    "to_functional_rules",
    "treelike_to_rgx",
    "union_of_rules_to_rgx",
]
