"""Translations between rules and RGX (§4.3, Propositions 4.8/4.9,
Lemmas B.1/B.2, Theorem 4.10).

The pipeline established by the paper::

    simple rule ──(4.8)──▶ union of functional dag-like rules
                ──(4.9)──▶ union of functional tree-like rules
                ──(B.1)──▶ RGX                    (and back via B.2)

Each step may blow up exponentially (doubly so end-to-end) — the paper
says as much — so every function takes a budget.

Equivalence caveat: Theorem 4.7 introduces auxiliary variables, so rule
unions produced here are equivalent to their source *after projecting
away* :func:`repro.rules.cycles.auxiliary_variables`; benchmark E15
checks exactly that.
"""

from __future__ import annotations

from itertools import product

from repro.rgx.ast import (
    Concat,
    Epsilon,
    Letter,
    Rgx,
    Star,
    Union,
    VarBind,
    concat,
    union,
    var as var_binding,
)
from repro.rgx.properties import derives_epsilon
from repro.rgx.rewrite import simplify
from repro.rules.graph import DOC, is_dag_like, is_tree_like, prune_unreachable
from repro.rules.rule import Rule
from repro.rules.spanrgx import PathForm, path_disjuncts
from repro.spans.mapping import Variable
from repro.util.errors import BudgetExceededError, RuleError

DEFAULT_RULE_BUDGET = 20_000


# ---------------------------------------------------------------------------
# Proposition 4.8: simple rule → union of functional dag-like rules
# ---------------------------------------------------------------------------


def to_functional_rules(rule: Rule, budget: int = DEFAULT_RULE_BUDGET) -> list[Rule]:
    """Replace every formula by a functional disjunct, in all combinations.

    The first half of Proposition 4.8 — the paper's example::

        (x|y) ∧ x.(a|b) ∧ y.c  ≡  {x∧x.a∧y.c, x∧x.b∧y.c, y∧x.a∧y.c, y∧x.b∧y.c}
    """
    if not rule.is_simple():
        raise RuleError("Proposition 4.8 is stated for simple rules")
    root_choices = [form.to_rgx() for form in path_disjuncts(rule.root, budget)]
    conjunct_choices: list[list[Rgx]] = []
    for _, formula in rule.conjuncts:
        conjunct_choices.append(
            [form.to_rgx() for form in path_disjuncts(formula, budget)]
        )
    combinations: list[Rule] = []
    for chosen in product(root_choices, *conjunct_choices):
        root = chosen[0]
        conjuncts = tuple(
            (head, formula)
            for (head, _), formula in zip(rule.conjuncts, chosen[1:])
        )
        combinations.append(Rule(root, conjuncts))
        if len(combinations) > budget:
            raise BudgetExceededError("functional rule expansion", budget)
    return combinations


def to_functional_daglike(
    rule: Rule, budget: int = DEFAULT_RULE_BUDGET
) -> list[Rule]:
    """Proposition 4.8 in full: a union of functional *dag-like* rules."""
    from repro.rules.cycles import to_daglike

    return [to_daglike(functional) for functional in to_functional_rules(rule, budget)]


# ---------------------------------------------------------------------------
# Proposition 4.9: satisfiable dag-like rule → union of functional tree-like
# ---------------------------------------------------------------------------


class _Candidate:
    """A rule in *path form*: every formula is a single PathForm.

    In such a rule every reachable variable is instantiated whenever its
    parent is (path forms have no unions), which is what licenses dropping
    a candidate as soon as any conjunct becomes unsatisfiable.
    """

    def __init__(self, root: PathForm, conjuncts: dict[Variable, PathForm]) -> None:
        self.root = root
        self.conjuncts = conjuncts

    def graph(self) -> dict[str, set[str]]:
        graph: dict[str, set[str]] = {DOC: set(self.root.variables) & set(self.conjuncts)}
        for head, form in self.conjuncts.items():
            graph[head] = set(form.variables) & set(self.conjuncts)
        return graph

    def form_of(self, node: str) -> PathForm:
        return self.root if node == DOC else self.conjuncts[node]

    def set_form(self, node: str, form: PathForm) -> None:
        if node == DOC:
            self.root = form
        else:
            self.conjuncts[node] = form

    def to_rule(self) -> Rule:
        return prune_unreachable(
            Rule(
                self.root.to_rgx(),
                tuple(
                    (head, form.to_rgx())
                    for head, form in self.conjuncts.items()
                ),
            )
        )


def _force_right_of(form: PathForm, variable: Variable) -> tuple[PathForm, list[Variable]] | None:
    """ε-force everything right of ``variable``'s occurrence; ``None`` = unsat."""
    position = form.variables.index(variable)
    return _force_range(form, position + 1, len(form.variables), position + 1, len(form.regexes))


def _force_left_of(form: PathForm, variable: Variable) -> tuple[PathForm, list[Variable]] | None:
    position = form.variables.index(variable)
    return _force_range(form, 0, position, 0, position + 1)


def _force_between(
    form: PathForm, left: Variable, right: Variable
) -> tuple[PathForm, list[Variable]] | None:
    i = form.variables.index(left)
    j = form.variables.index(right)
    if i > j:
        i, j = j, i
    return _force_range(form, i + 1, j, i + 1, j + 1)


def _force_range(
    form: PathForm,
    var_start: int,
    var_end: int,
    regex_start: int,
    regex_end: int,
) -> tuple[PathForm, list[Variable]] | None:
    """Force the regexes in ``[regex_start, regex_end)`` to ε.

    Returns the rewritten form plus the variables in ``[var_start,
    var_end)`` (now squeezed into an empty region, hence ε-forced), or
    ``None`` when some regex cannot derive ε.
    """
    from repro.rgx.ast import EPSILON

    regexes = list(form.regexes)
    for index in range(regex_start, regex_end):
        if not derives_epsilon(regexes[index]):
            return None
        regexes[index] = EPSILON
    forced = list(form.variables[var_start:var_end])
    return PathForm(tuple(regexes), form.variables), forced


def _remove_occurrence(form: PathForm, variable: Variable) -> PathForm:
    position = form.variables.index(variable)
    regexes = list(form.regexes)
    merged = simplify(concat(regexes[position], regexes[position + 1]))
    new_regexes = tuple(regexes[:position] + [merged] + regexes[position + 2 :])
    new_variables = form.variables[:position] + form.variables[position + 1 :]
    return PathForm(new_regexes, new_variables)


def _nu_form(form: PathForm) -> PathForm | None:
    """ν on a path form: every regex must derive ε (else unsatisfiable)."""
    from repro.rgx.ast import EPSILON

    for regex in form.regexes:
        if not derives_epsilon(regex):
            return None
    return PathForm((EPSILON,) * len(form.regexes), form.variables)


def _find_parents(candidate: _Candidate, node: Variable) -> list[str]:
    parents = []
    if node in candidate.root.variables:
        parents.append(DOC)
    for head, form in candidate.conjuncts.items():
        if node in form.variables:
            parents.append(head)
    return parents


def _bfs_path(graph: dict[str, set[str]], source: str, target: str) -> list[str] | None:
    from collections import deque

    queue = deque([[source]])
    seen = {source}
    while queue:
        path = queue.popleft()
        node = path[-1]
        if node == target:
            return path
        for successor in sorted(graph.get(node, ())):
            if successor not in seen:
                seen.add(successor)
                queue.append(path + [successor])
    return None


def daglike_to_treelike(
    rule: Rule, budget: int = DEFAULT_RULE_BUDGET
) -> list[Rule]:
    """Proposition 4.9: a union of functional tree-like rules.

    An empty result certifies that the input rule is unsatisfiable (the
    paper's "abort" case) — used by the rule satisfiability decision.
    """
    if not is_dag_like(rule):
        raise RuleError("Proposition 4.9 expects a dag-like rule")
    normalized = prune_unreachable(rule.normalized())
    candidates = _expand_candidates(normalized, budget)
    surviving: list[Rule] = []
    for candidate in candidates:
        resolved = _resolve_candidate(candidate)
        if resolved is None:
            continue
        result = resolved.to_rule()
        if is_tree_like(result):
            surviving.append(result)
        if len(surviving) > budget:
            raise BudgetExceededError("tree-like expansion", budget)
    return surviving


def _expand_candidates(rule: Rule, budget: int) -> list[_Candidate]:
    root_forms = path_disjuncts(rule.root, budget)
    per_conjunct = [
        (head, path_disjuncts(formula, budget))
        for head, formula in rule.conjuncts
    ]
    candidates: list[_Candidate] = []
    for root_form in root_forms:
        for chosen in product(*(forms for _, forms in per_conjunct)):
            conjuncts = {
                head: form
                for (head, _), form in zip(per_conjunct, chosen)
            }
            candidates.append(_Candidate(root_form, conjuncts))
            if len(candidates) > budget:
                raise BudgetExceededError("candidate expansion", budget)
    return candidates


def _resolve_candidate(candidate: _Candidate) -> _Candidate | None:
    """Iteratively remove undirected cycles; ``None`` when unsatisfiable."""
    force_empty: set[Variable] = set()
    for _ in range(1 + sum(len(f.variables) for f in candidate.conjuncts.values()) * 4 + len(candidate.root.variables)):
        graph = candidate.graph()
        shared = _find_shared_node(candidate)
        if shared is None:
            break
        if not _break_one_cycle(candidate, graph, shared, force_empty):
            return None
    else:
        raise RuleError("undirected-cycle elimination did not converge")
    # Apply the accumulated ε-forcing transitively.
    pending = sorted(force_empty)
    processed: set[Variable] = set()
    while pending:
        head = pending.pop()
        if head in processed or head not in candidate.conjuncts:
            continue
        processed.add(head)
        stripped = _nu_form(candidate.conjuncts[head])
        if stripped is None:
            return None
        candidate.conjuncts[head] = stripped
        pending.extend(v for v in stripped.variables if v not in processed)
    return candidate


def _find_shared_node(candidate: _Candidate) -> Variable | None:
    for head in sorted(candidate.conjuncts):
        if len(_find_parents(candidate, head)) >= 2:
            return head
    return None


def _break_one_cycle(
    candidate: _Candidate,
    graph: dict[str, set[str]],
    shared: Variable,
    force_empty: set[Variable],
) -> bool:
    parents = _find_parents(candidate, shared)
    first_path = _bfs_path(graph, DOC, parents[0])
    second_path = _bfs_path(graph, DOC, parents[1])
    if first_path is None or second_path is None:
        # An unreachable parent's conjunct is vacuous: drop the mention by
        # removing the edge (equivalent because the head never
        # instantiates).
        unreachable = parents[0] if first_path is None else parents[1]
        candidate.conjuncts[unreachable] = _remove_occurrence(
            candidate.conjuncts[unreachable], shared
        )
        return True
    path_one = first_path + [shared]
    path_two = second_path + [shared]
    # Last node of path_one also on path_two: suffixes beyond it are
    # disjoint (a DAG cannot re-converge before `shared`).
    common = set(path_one[:-1]) & set(path_two[:-1])
    pivot_index = max(i for i, node in enumerate(path_one[:-1]) if node in common)
    pivot = path_one[pivot_index]
    suffix_one = path_one[path_one.index(pivot) :]
    suffix_two = path_two[path_two.index(pivot) :]
    u2, v2 = suffix_one[1], suffix_two[1]
    pivot_form = candidate.form_of(pivot)
    if pivot_form.variables.index(u2) > pivot_form.variables.index(v2):
        suffix_one, suffix_two = suffix_two, suffix_one
        u2, v2 = v2, u2
    # (1) between the two children of the pivot everything is ε;
    outcome = _force_between(pivot_form, u2, v2)
    if outcome is None:
        return False
    new_form, forced = outcome
    candidate.set_form(pivot, new_form)
    force_empty.update(forced)
    # (2) right of the next hop along the earlier (u-) chain;
    for i in range(1, len(suffix_one) - 1):
        node, nxt = suffix_one[i], suffix_one[i + 1]
        outcome = _force_right_of(candidate.form_of(node), nxt)
        if outcome is None:
            return False
        new_form, forced = outcome
        candidate.set_form(node, new_form)
        force_empty.update(forced)
    # (3) left of the next hop along the later (v-) chain;
    for i in range(1, len(suffix_two) - 1):
        node, nxt = suffix_two[i], suffix_two[i + 1]
        outcome = _force_left_of(candidate.form_of(node), nxt)
        if outcome is None:
            return False
        new_form, forced = outcome
        candidate.set_form(node, new_form)
        force_empty.update(forced)
    # (4) the shared node sits at the junction of two disjoint siblings, so
    # its own content is ε (Figure 3's deduction);
    force_empty.add(shared)
    # (5) drop the shared node's occurrence from the v-side parent.
    last_parent = suffix_two[-2]
    candidate.set_form(
        last_parent, _remove_occurrence(candidate.form_of(last_parent), shared)
    )
    return True


# ---------------------------------------------------------------------------
# Lemma B.1: tree-like rule → RGX
# ---------------------------------------------------------------------------


def treelike_to_rgx(rule: Rule) -> Rgx:
    """Nest each conjunct into its (unique) mention: ``y ↦ y{γ_y}``.

    The paper's example: ``(a·x·b·y) ∧ x.(abc·z) ∧ y.Σ* ∧ z.d`` becomes
    ``a·x{abc·z{d}}·b·y{Σ*}``.  Worst-case exponential when a variable is
    mentioned in several union branches.
    """
    if not is_tree_like(rule):
        raise RuleError("Lemma B.1 expects a tree-like rule")
    normalized = rule.normalized()
    formula_of = dict(normalized.conjuncts)
    cache: dict[Variable, Rgx] = {}

    def expanded(variable: Variable) -> Rgx:
        if variable not in cache:
            cache[variable] = substitute(formula_of[variable])
        return cache[variable]

    def substitute(formula: Rgx) -> Rgx:
        if isinstance(formula, VarBind):
            if formula.variable in formula_of:
                return VarBind(formula.variable, expanded(formula.variable))
            return formula
        if isinstance(formula, (Epsilon, Letter)):
            return formula
        if isinstance(formula, Concat):
            return concat(*(substitute(part) for part in formula.parts))
        if isinstance(formula, Union):
            return union(*(substitute(option) for option in formula.options))
        if isinstance(formula, Star):
            return Star(substitute(formula.body))
        raise RuleError(f"unknown node {formula!r}")

    return simplify(substitute(normalized.root))


# ---------------------------------------------------------------------------
# Lemma B.2: RGX → union of tree-like rules
# ---------------------------------------------------------------------------


def _strip_bindings(expression: Rgx, conjuncts: list[tuple[Variable, Rgx]]) -> Rgx:
    """Replace top-level bindings by bare variables, recording conjuncts."""
    if isinstance(expression, VarBind):
        body = _strip_bindings(expression.body, conjuncts)
        conjuncts.append((expression.variable, simplify(body)))
        return var_binding(expression.variable)
    if isinstance(expression, (Epsilon, Letter)):
        return expression
    if isinstance(expression, Concat):
        return concat(*(_strip_bindings(p, conjuncts) for p in expression.parts))
    if isinstance(expression, Union):
        return union(*(_strip_bindings(o, conjuncts) for o in expression.options))
    if isinstance(expression, Star):
        return Star(_strip_bindings(expression.body, conjuncts))
    raise RuleError(f"unknown node {expression!r}")


def rgx_to_treelike_rules(expression: Rgx, budget: int = 100_000) -> list[Rule]:
    """Lemma B.2: every RGX is a union of (simple, tree-like) rules.

    Path-decomposes the RGX through the VAstk path-union construction,
    then peels each path expression's nested bindings into conjuncts.
    """
    from repro.automata.path_union import vastk_to_rgx
    from repro.automata.thompson import to_vastk
    from repro.rgx.ast import Union as UnionNode

    path_union = vastk_to_rgx(to_vastk(expression), budget=budget)
    if path_union is None:
        return []
    disjuncts = (
        list(path_union.options)
        if isinstance(path_union, UnionNode)
        else [path_union]
    )
    rules: list[Rule] = []
    for disjunct in disjuncts:
        conjuncts: list[tuple[Variable, Rgx]] = []
        root = simplify(_strip_bindings(disjunct, conjuncts))
        rules.append(Rule(root, tuple(conjuncts), check_span_rgx=False))
    return rules


# ---------------------------------------------------------------------------
# Theorem 4.10: unions of simple rules ≡ RGX
# ---------------------------------------------------------------------------


def union_of_rules_to_rgx(
    rules: list[Rule], budget: int = DEFAULT_RULE_BUDGET
) -> Rgx | None:
    """The forward direction of Theorem 4.10 (``None`` = unsatisfiable).

    Auxiliary variables introduced by cycle elimination are *kept* in the
    produced RGX; project them away when comparing with the source rules.
    """
    expressions: list[Rgx] = []
    for simple_rule in rules:
        for daglike in to_functional_daglike(simple_rule, budget):
            for treelike in daglike_to_treelike(daglike, budget):
                expressions.append(treelike_to_rgx(treelike))
    if not expressions:
        return None
    return simplify(union(*expressions))
