"""Rule graphs and the simple / dag-like / tree-like hierarchy (§4.3).

The graph ``Gϕ`` of a rule has one node per head variable plus a ``doc``
node for ``ϕ0``; there is an edge ``(x, y)`` when the conjunct ``x.R``
mentions ``y``, and ``(doc, x)`` when ``ϕ0`` mentions ``x``.  A simple
rule is *dag-like* when ``Gϕ`` is acyclic and *tree-like* when ``Gϕ`` is a
tree rooted at ``doc``.
"""

from __future__ import annotations

from repro.rules.rule import Rule
from repro.spans.mapping import Variable
from repro.util.graphs import reachable_from, strongly_connected_components

DOC = "⊤doc"
"""The distinguished root node of a rule graph (not a legal variable name)."""


def rule_graph(rule: Rule) -> dict[str, set[str]]:
    """``Gϕ`` as an adjacency mapping.  Nodes: head variables and ``DOC``."""
    graph: dict[str, set[str]] = {DOC: set()}
    heads = set(rule.heads)
    for variable in rule.root.variables():
        if variable in heads:
            graph[DOC].add(variable)
    for head, formula in rule.conjuncts:
        graph.setdefault(head, set())
        for variable in formula.variables():
            if variable in heads:
                graph[head].add(variable)
    return graph


def is_dag_like(rule: Rule) -> bool:
    """Simple and acyclic (Section 4.3)."""
    if not rule.is_simple():
        return False
    graph = rule_graph(rule)
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            return False
        node = component[0]
        if node in graph.get(node, ()):  # self-loop such as x.(a x b)
            return False
    return True


def is_tree_like(rule: Rule) -> bool:
    """Simple, acyclic, every variable reachable from ``doc`` exactly once.

    Following the paper, ``Gϕ`` must be a tree rooted at ``doc``: every
    head has in-degree one (counting ``doc``) and is reachable from the
    root.  We count *edge multiplicity per distinct parent* — a variable
    mentioned by two different conjuncts breaks tree-likeness, while two
    mentions inside one formula (e.g. in different union branches) do not.
    """
    if not is_dag_like(rule):
        return False
    graph = rule_graph(rule)
    in_degree: dict[str, int] = {head: 0 for head in rule.heads}
    for node, successors in graph.items():
        for successor in successors:
            if successor in in_degree:
                in_degree[successor] += 1
    if any(count > 1 for count in in_degree.values()):
        return False
    reached = reachable_from(graph, [DOC])
    return all(head in reached for head in rule.heads)


def reachable_heads(rule: Rule) -> set[Variable]:
    """Head variables reachable from ``doc`` (the instantiable ones)."""
    graph = rule_graph(rule)
    return {node for node in reachable_from(graph, [DOC]) if node != DOC}


def prune_unreachable(rule: Rule) -> Rule:
    """Drop conjuncts whose head can never be instantiated.

    A variable unreachable from ``doc`` in ``Gϕ`` is never in the ivar
    closure, so its conjunct is vacuous; removing it preserves ``⟦ϕ⟧_d``.
    """
    keep = reachable_heads(rule)
    kept = tuple(
        (head, formula) for head, formula in rule.conjuncts if head in keep
    )
    if len(kept) == len(rule.conjuncts):
        return rule
    return Rule(rule.root, kept, rule.check_span_rgx)
