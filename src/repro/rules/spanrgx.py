"""spanRGX path decomposition (used by Propositions 4.8 and 4.9).

A spanRGX formula treats variables as atomic tokens (``x`` abbreviates
``x{Σ*}``), so it can be decomposed into a finite union of *path forms*

    R1 · w1 · R2 · w2 · ... · wk · R(k+1)

with pure regular expressions ``Ri`` and pairwise-distinct variables
``wi`` — each path form is a functional spanRGX.  This is the paper's
``PUstk`` decomposition specialised to spanRGX (its example:
``(x|y)(z|w) ≡ ε | x·z | x·w | y·z | y·w`` — sic, with the variable-free
disjunct arising from stars).  Stars over variable-containing bodies are
unrolled: a variable can contribute at most once, so the unrolling is
finite, with the variable-free residue folded back into a star.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.rgx.ast import (
    EPSILON,
    Concat,
    Epsilon,
    Letter,
    Rgx,
    Star,
    Union,
    VarBind,
    concat,
    star,
    union,
    var as var_binding,
)
from repro.rgx.properties import is_span_rgx
from repro.rgx.rewrite import simplify
from repro.spans.mapping import Variable
from repro.util.errors import BudgetExceededError, RuleError

#: Default ceiling on the number of path forms produced.
DEFAULT_PATH_BUDGET = 50_000


@dataclass(frozen=True)
class PathForm:
    """``R1 · w1 · R2 · ... · wk · R(k+1)`` — regexes interleaved with variables."""

    regexes: tuple[Rgx, ...]  # k + 1 pure regular expressions
    variables: tuple[Variable, ...]  # k pairwise-distinct variables

    def __post_init__(self) -> None:
        if len(self.regexes) != len(self.variables) + 1:
            raise RuleError("malformed path form")

    def to_rgx(self) -> Rgx:
        """The functional spanRGX this path form denotes."""
        parts: list[Rgx] = [self.regexes[0]]
        for variable, regex in zip(self.variables, self.regexes[1:]):
            parts.append(var_binding(variable))
            parts.append(regex)
        return simplify(concat(*parts))

    def var_set(self) -> frozenset[Variable]:
        return frozenset(self.variables)


def _combine(first: PathForm, second: PathForm) -> PathForm | None:
    """Concatenate two path forms; ``None`` when variables would repeat."""
    if set(first.variables) & set(second.variables):
        return None
    glued = simplify(concat(first.regexes[-1], second.regexes[0]))
    return PathForm(
        first.regexes[:-1] + (glued,) + second.regexes[1:],
        first.variables + second.variables,
    )


def path_disjuncts(
    formula: Rgx, budget: int = DEFAULT_PATH_BUDGET
) -> list[PathForm]:
    """All path forms of a spanRGX formula (their union is equivalent).

    The decomposition is exact under the mapping semantics: derivations
    repeating a variable produce no mapping (Table 2 demands disjoint
    domains), so dropping them loses nothing.
    """
    if not is_span_rgx(formula):
        raise RuleError(f"path decomposition requires spanRGX, got {formula}")
    return _decompose(formula, budget)


def _decompose(formula: Rgx, budget: int) -> list[PathForm]:
    if isinstance(formula, Epsilon):
        return [PathForm((EPSILON,), ())]
    if isinstance(formula, Letter):
        return [PathForm((formula,), ())]
    if isinstance(formula, VarBind):
        return [PathForm((EPSILON, EPSILON), (formula.variable,))]
    if isinstance(formula, Concat):
        current = _decompose(formula.parts[0], budget)
        for part in formula.parts[1:]:
            part_forms = _decompose(part, budget)
            combined: list[PathForm] = []
            for left in current:
                for right in part_forms:
                    glued = _combine(left, right)
                    if glued is not None:
                        combined.append(glued)
                    if len(combined) > budget:
                        raise BudgetExceededError("path decomposition", budget)
            current = _dedupe_forms(combined)
        return current
    if isinstance(formula, Union):
        collected: list[PathForm] = []
        for option in formula.options:
            collected.extend(_decompose(option, budget))
            if len(collected) > budget:
                raise BudgetExceededError("path decomposition", budget)
        return _dedupe_forms(collected)
    if isinstance(formula, Star):
        return _decompose_star(formula, budget)
    raise RuleError(f"unknown spanRGX node {formula!r}")


def _decompose_star(formula: Star, budget: int) -> list[PathForm]:
    body_forms = _decompose(formula.body, budget)
    pure = [form for form in body_forms if not form.variables]
    with_vars = [form for form in body_forms if form.variables]
    if not with_vars:
        # Ordinary star over a variable-free body: keep it intact.
        return [PathForm((simplify(star(formula.body)),), ())]
    # The variable-free residue may repeat arbitrarily between the
    # variable-carrying iterations.
    if pure:
        residue = simplify(star(union(*(form.regexes[0] for form in pure))))
    else:
        residue = EPSILON
    residue_form = PathForm((residue,), ())
    results: list[PathForm] = [residue_form]
    # Enumerate ordered sequences of variable-carrying disjuncts with
    # pairwise-disjoint variables (longer sequences repeat a variable and
    # produce no mapping).
    for count in range(1, len(with_vars) + 1):
        for sequence in permutations(range(len(with_vars)), count):
            assembled: PathForm | None = residue_form
            for index in sequence:
                assembled = _combine(assembled, with_vars[index])
                if assembled is None:
                    break
                assembled = _combine(assembled, residue_form)
                if assembled is None:
                    break
            if assembled is not None:
                results.append(assembled)
            if len(results) > budget:
                raise BudgetExceededError("star unrolling", budget)
    return _dedupe_forms(results)


def _dedupe_forms(forms: list[PathForm]) -> list[PathForm]:
    seen: set[PathForm] = set()
    unique: list[PathForm] = []
    for form in forms:
        if form not in seen:
            seen.add(form)
            unique.append(form)
    return unique


def functional_decomposition(
    formula: Rgx, budget: int = DEFAULT_PATH_BUDGET
) -> list[Rgx]:
    """A spanRGX as an equivalent union of *functional* spanRGX formulas.

    This is the first step of Proposition 4.8 (its possible exponential
    size is the proposition's own caveat).
    """
    return [form.to_rgx() for form in path_disjuncts(formula, budget)]
