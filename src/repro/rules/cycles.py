"""Cycle elimination for functional simple rules (Theorem 4.7).

Every simple rule whose formulas are functional spanRGX can be rewritten,
in polynomial time, into an equivalent *dag-like* rule (equivalence up to
the fresh auxiliary variables, which callers project away).  The
construction follows the appendix proof:

* the ν-function strips a spanRGX down to its variable orderings
  (``ν = H`` certifies that every derivable word contains a letter);
* nodes are painted **black** (``ν = H``), **red** (can reach black) or
  **green**; a red cycle is unsatisfiable (Figure 2's analysis);
* Tarjan's algorithm lists strongly connected components in topological
  order; simple green cycles are broken with an auxiliary variable
  (members keep a single, shared, arbitrary value), chorded components
  force their members — and everything they reach — to empty content.

Deviations, both documented in DESIGN.md:

* for chorded components we *also* replace the members by the auxiliary
  variable in ancestor formulas (the paper only states this for simple
  cycles; without it the auxiliary conjunct would be vacuous);
* when an ancestor formula mentions several members of one component, the
  content between the mentions is forced to ε via path decomposition
  (the members carry equal spans, so anything between them is empty).
"""

from __future__ import annotations

from itertools import count

from repro.alphabet import CharSet
from repro.rgx.ast import (
    ANY_STAR,
    EPSILON,
    Concat,
    Epsilon,
    Letter,
    Rgx,
    Star,
    Union,
    VarBind,
    char,
    concat,
    map_expression,
    union,
    var as var_binding,
)
from repro.rgx.properties import derives_epsilon
from repro.rgx.rewrite import simplify
from repro.rules.graph import DOC, rule_graph
from repro.rules.rule import Rule
from repro.rules.spanrgx import path_disjuncts
from repro.spans.mapping import Variable
from repro.util.errors import RuleError
from repro.util.graphs import reachable_from, strongly_connected_components


def nu(formula: Rgx) -> Rgx | None:
    """The ν-function of Theorem 4.7 (``None`` encodes ``H``).

    Keeps variable occurrences and their order, discards letters and
    starred subexpressions, with the ``H`` algebra ``H·α = H``,
    ``H ∨ α = α``, ``H* = ε``.
    """
    if isinstance(formula, Letter):
        return None
    if isinstance(formula, Epsilon):
        return EPSILON
    if isinstance(formula, VarBind):
        return formula
    if isinstance(formula, Star):
        return EPSILON
    if isinstance(formula, Concat):
        parts: list[Rgx] = []
        for part in formula.parts:
            stripped = nu(part)
            if stripped is None:
                return None
            parts.append(stripped)
        return simplify(concat(*parts))
    if isinstance(formula, Union):
        options = [nu(option) for option in formula.options]
        surviving = [option for option in options if option is not None]
        if not surviving:
            return None
        return simplify(union(*surviving))
    raise RuleError(f"unknown spanRGX node {formula!r}")


def colour_nodes(rule: Rule) -> dict[Variable, str]:
    """black / red / green per the Theorem 4.7 colouring scheme."""
    colours: dict[Variable, str] = {}
    black = {
        head for head, formula in rule.conjuncts if nu(formula) is None
    }
    graph = rule_graph(rule)
    reverse: dict[str, set[str]] = {}
    for node, successors in graph.items():
        for successor in successors:
            reverse.setdefault(successor, set()).add(node)
    red = reachable_from(reverse, sorted(black))
    for head in rule.heads:
        if head in red or head in black:
            colours[head] = "red" if head not in black else "black"
        else:
            colours[head] = "green"
    # Black nodes are also red by the paper's flooding; expose both.
    for head in black:
        colours[head] = "black"
    return colours


def unsatisfiable_daglike_rule() -> Rule:
    """A canonical unsatisfiable functional dag-like rule.

    ``x ∧ x.(u·v) ∧ u.(y·a) ∧ v.(y·b) ∧ y.Σ*``: the siblings ``u`` and
    ``v`` are disjoint yet both must contain ``y`` at incompatible
    boundary positions — Figure 3's undirected-cycle obstruction.
    """
    return Rule(
        var_binding("x"),
        (
            ("x", concat(var_binding("u"), var_binding("v"))),
            ("u", concat(var_binding("y"), char("a"))),
            ("v", concat(var_binding("y"), char("b"))),
            ("y", ANY_STAR),
        ),
    )


def _replace_variables(formula: Rgx, mapping: dict[Variable, Rgx]) -> Rgx:
    """Replace bare variable occurrences by the given expressions."""

    def transform(node: Rgx) -> Rgx:
        if isinstance(node, VarBind) and node.variable in mapping:
            return mapping[node.variable]
        return node

    return simplify(map_expression(formula, transform))


class _CycleEliminator:
    """One run of the Theorem 4.7 rewriting (restarted when the forced-ε

    set grows, which happens at most once per variable)."""

    def __init__(self, rule: Rule) -> None:
        self.original = rule
        self.force_empty: set[Variable] = set()
        self.aux_names = (f"u_{i}" for i in count())
        self.taken = set(rule.variables())

    def fresh_aux(self) -> Variable:
        for name in self.aux_names:
            if name not in self.taken:
                self.taken.add(name)
                return name
        raise AssertionError("unreachable")

    def run(self) -> Rule:
        for _ in range(len(self.original.variables()) + 2):
            outcome = self._single_pass()
            if outcome is not None:
                return outcome
        raise RuleError("cycle elimination did not converge")

    # -- one full pass ----------------------------------------------------------

    def _single_pass(self) -> Rule | None:
        rule = self.original
        colours = colour_nodes(rule)
        graph = rule_graph(rule)
        formula_of = dict(rule.conjuncts)
        components = [
            component
            for component in reversed(strongly_connected_components(graph))
            if component != [DOC]
        ]
        emitted: list[tuple[Variable, Rgx]] = []
        root = rule.root
        force_empty = set(self.force_empty)

        def mark_empty(variables) -> None:
            force_empty.update(v for v in variables if v != DOC)

        for component in components:
            members = set(component)
            nontrivial = len(component) > 1 or (
                component[0] in graph.get(component[0], ())
            )
            if not nontrivial:
                head = component[0]
                formula = formula_of[head]
                if head in force_empty:
                    stripped = nu(formula)
                    if stripped is None:
                        return unsatisfiable_daglike_rule()
                    emitted.append((head, stripped))
                    # Everything inside an ε-span is itself empty; only the
                    # variables ν kept can still be assigned.
                    mark_empty(stripped.variables())
                else:
                    emitted.append((head, formula))
                continue
            if len(component) == 1:
                # A self-loop x.ϕ with x ∈ var(ϕ): under the mapping
                # semantics, x{ϕ} would rebind x, so the conjunct can
                # never be satisfied once x is instantiated.  (Deviation
                # from the paper's type-2 treatment, which overlooks the
                # rebinding; see DESIGN.md.)
                head = component[0]
                dead = self.fresh_aux()
                emitted.append(
                    (
                        head,
                        concat(
                            var_binding(dead),
                            Letter(CharSet.any()),
                            var_binding(dead),
                        ),
                    )
                )
                continue
            # Non-trivial component: red means unsatisfiable (a member needs
            # strictly growing content along the cycle — Figure 2's cases).
            if any(colours.get(member) in ("red", "black") for member in members):
                return unsatisfiable_daglike_rule()
            is_simple_cycle = self._is_simple_cycle(graph, members)
            aux = self.fresh_aux()
            if is_simple_cycle and not (members & force_empty):
                ordered = self._cycle_order(graph, members)
                replaced_ok = self._splice_aux(emitted, root, members, aux)
                if replaced_ok is None:
                    return None  # force_empty grew: restart
                emitted, root = replaced_ok
                emitted.append((aux, var_binding(ordered[0])))
                for position, member in enumerate(ordered):
                    stripped = nu(formula_of[member])
                    assert stripped is not None  # members are green
                    if position == len(ordered) - 1:
                        stripped = _replace_variables(
                            stripped, {ordered[0]: ANY_STAR}
                        )
                    stripped = simplify(stripped)
                    emitted.append((member, stripped))
                    # The members share one value; everything else ν kept
                    # in their formulas lies between equal spans, hence ε.
                    mark_empty(stripped.variables() - members)
            else:
                # Chorded component (or one forced empty): members have
                # empty content at a single shared position.
                mark_empty(members)
                replaced_ok = self._splice_aux(emitted, root, members, aux)
                if replaced_ok is None:
                    return None
                emitted, root = replaced_ok
                emitted.append(
                    (aux, concat(*(var_binding(m) for m in sorted(members))))
                )
                erase = {member: EPSILON for member in members}
                for member in sorted(members):
                    stripped = nu(formula_of[member])
                    assert stripped is not None
                    rewritten = _replace_variables(stripped, erase)
                    emitted.append((member, rewritten))
                    mark_empty(rewritten.variables())
        if force_empty != self.force_empty:
            self.force_empty = force_empty
            return None
        return Rule(root, tuple(emitted))

    @staticmethod
    def _is_simple_cycle(graph: dict[str, set[str]], members: set[str]) -> bool:
        for member in members:
            if len(graph.get(member, set()) & members) != 1:
                return False
        return True

    @staticmethod
    def _cycle_order(graph: dict[str, set[str]], members: set[str]) -> list[str]:
        start = sorted(members)[0]
        ordered = [start]
        while True:
            (successor,) = graph[ordered[-1]] & members
            if successor == start:
                return ordered
            ordered.append(successor)

    def _splice_aux(
        self,
        emitted: list[tuple[Variable, Rgx]],
        root: Rgx,
        members: set[str],
        aux: Variable,
    ) -> tuple[list[tuple[Variable, Rgx]], Rgx] | None:
        """Replace member occurrences by ``aux`` in the root and emitted
        conjuncts.  Formulas mentioning several members force the content
        between the mentions to ε; discovering new forced-ε variables
        aborts the pass (``None``) so it can restart with the larger set.
        """
        new_emitted: list[tuple[Variable, Rgx]] = []
        new_root, grew = self._splice_formula(root, members, aux)
        if grew:
            return None
        for head, formula in emitted:
            updated, grew = self._splice_formula(formula, members, aux)
            if grew:
                return None
            new_emitted.append((head, updated))
        return new_emitted, new_root

    def _splice_formula(
        self, formula: Rgx, members: set[str], aux: Variable
    ) -> tuple[Rgx, bool]:
        mentioned = formula.variables() & members
        if not mentioned:
            return formula, False
        if len(mentioned) == 1:
            replaced = _replace_variables(
                formula, {next(iter(mentioned)): var_binding(aux)}
            )
            return replaced, False
        # Several members in one formula: they carry equal spans, so the
        # content between mentions is empty.  Work disjunct by disjunct.
        grew = False
        disjuncts: list[Rgx] = []
        for form in path_disjuncts(formula):
            positions = [
                i for i, v in enumerate(form.variables) if v in members
            ]
            if not positions:
                disjuncts.append(form.to_rgx())
                continue
            first, last = positions[0], positions[-1]
            # Regexes strictly between the first and last mention must
            # derive ε; variables between are forced to empty content.
            feasible = True
            for regex in form.regexes[first + 1 : last + 1]:
                if not derives_epsilon(regex):
                    feasible = False
                    break
            if not feasible:
                continue
            between = [
                v
                for v in form.variables[first + 1 : last]
                if v not in members
            ]
            for variable in between:
                if variable not in self.force_empty:
                    self.force_empty.add(variable)
                    grew = True
            pieces: list[Rgx] = [form.regexes[0]]
            for i, variable in enumerate(form.variables):
                if i == first:
                    pieces.append(var_binding(aux))
                elif first < i <= last and variable in members:
                    pass  # later mentions collapse into the aux occurrence
                else:
                    pieces.append(var_binding(variable))
                if first <= i < last:
                    continue  # the ε-forced gap contributes nothing
                pieces.append(form.regexes[i + 1])
            disjuncts.append(simplify(concat(*pieces)))
        if not disjuncts:
            # Every disjunct died: whenever this conjunct's head is
            # instantiated the rule cannot be satisfied.  ``v·Σ·v`` (a
            # doubly-used fresh variable) is an unsatisfiable spanRGX, so
            # it kills exactly those tuples.
            dead = self.fresh_aux()
            return (
                concat(
                    var_binding(dead), Letter(CharSet.any()), var_binding(dead)
                ),
                grew,
            )
        return simplify(union(*disjuncts)), grew


def to_daglike(rule: Rule) -> Rule:
    """Theorem 4.7: an equivalent functional dag-like rule.

    Requires a simple rule with functional spanRGX formulas.  Equivalence
    is up to the auxiliary ``u_i`` variables, which the caller should
    project away (see ``tests/rules/test_cycles.py``).
    """
    if not rule.is_simple():
        raise RuleError("cycle elimination is defined for simple rules")
    if not rule.is_functional():
        raise RuleError("cycle elimination requires functional formulas")
    normalized = rule.normalized()
    return _CycleEliminator(normalized).run()


def auxiliary_variables(before: Rule, after: Rule) -> frozenset[Variable]:
    """The fresh variables introduced by :func:`to_daglike`."""
    return frozenset(after.variables() - before.variables())
