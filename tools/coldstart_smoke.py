"""Cold-start vs warm-start smoke for the durable artifact cache.

Starts ``repro serve`` twice against the *same* ``--artifact-dir``:

1. **cold** — empty cache: the first request compiles the pattern, and
   the server persists the engine artifact on the way;
2. **warm** — fresh process, same directory: the first request must load
   the artifact instead of recompiling.

Asserts that the warm instance reports at least one artifact hit on
``/metrics`` and that its first response is at least
``MINIMUM_COLD_WARM_RATIO``× faster than the cold one (first-response
latency is dominated by plan + table + kernel construction, which is
exactly what the artifact skips).  Exits non-zero on any violation —
CI's cold-start smoke step runs this script directly::

    python tools/coldstart_smoke.py

An optional argument overrides the cache directory (default: a fresh
temporary directory, deleted afterwards).
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

#: Deliberately redundant pattern at ``opt_level=2``: sixteen
#: near-identical branches make the planner's budgeted determinisation
#: and collapse passes expensive, while the *planned* automaton — the
#: thing the artifact stores — stays small.  Cold start pays for the
#: planning; warm start only for the artifact load.
PATTERN = (
    ".*("
    + "|".join(f"Seller: s{{[^,\\n]*}}, ID{i}5" for i in range(16))
    + ").*"
)
OPT_LEVEL = 2
DOCUMENT = "Seller: John, ID75\n"

#: The warm first response must beat the cold one by at least this much.
MINIMUM_COLD_WARM_RATIO = 2.0

_HEALTH_ATTEMPTS = 150


def _get(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


def _first_response(port: int, cache_dir: str) -> tuple[float, dict, dict]:
    """(first-response seconds, response JSON, artifact gauges) for one
    freshly started server."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(port),
            "--batch-delay",
            "0",
            "--artifact-dir",
            cache_dir,
        ],
    )
    try:
        for _ in range(_HEALTH_ATTEMPTS):
            try:
                _get(f"http://127.0.0.1:{port}/healthz")
                break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        else:
            raise RuntimeError("server never became healthy")
        body = json.dumps(
            {"pattern": PATTERN, "document": DOCUMENT, "opt_level": OPT_LEVEL}
        ).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/enumerate",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        started = time.perf_counter()
        with urllib.request.urlopen(request, timeout=30) as response:
            reply = json.loads(response.read().decode())
        elapsed = time.perf_counter() - started
        gauges = {}
        for line in _get(f"http://127.0.0.1:{port}/metrics").splitlines():
            if line.startswith("repro_artifact_"):
                name, value = line.split()
                gauges[name] = float(value)
        return elapsed, reply, gauges
    finally:
        process.send_signal(signal.SIGTERM)
        if process.wait(timeout=30) != 0:
            raise RuntimeError("server did not drain cleanly")


def main() -> int:
    if len(sys.argv) > 1:
        cache_dir, cleanup = sys.argv[1], False
    else:
        cache_dir, cleanup = tempfile.mkdtemp(prefix="repro-artifacts-"), True
    try:
        cold_s, cold_reply, cold_gauges = _first_response(8261, cache_dir)
        warm_s, warm_reply, warm_gauges = _first_response(8262, cache_dir)
        print(f"cold first response: {cold_s * 1000:.1f} ms  {cold_gauges}")
        print(f"warm first response: {warm_s * 1000:.1f} ms  {warm_gauges}")
        mappings = cold_reply["results"][0]["mappings"]
        assert mappings == [{"s": "John"}], cold_reply
        assert warm_reply == cold_reply, "restart changed the output"
        assert cold_gauges.get("repro_artifact_saves") == 1, cold_gauges
        assert warm_gauges.get("repro_artifact_hits", 0) >= 1, (
            "warm server answered without touching the artifact cache"
        )
        assert warm_gauges.get("repro_artifact_misses", 1) == 0, warm_gauges
        ratio = cold_s / warm_s if warm_s else float("inf")
        print(f"cold/warm first-response ratio: {ratio:.2f}x")
        assert ratio >= MINIMUM_COLD_WARM_RATIO, (
            f"warm start only {ratio:.2f}x faster than cold "
            f"(need {MINIMUM_COLD_WARM_RATIO}x)"
        )
        print("cold-start smoke OK")
        return 0
    finally:
        if cleanup:
            shutil.rmtree(cache_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
