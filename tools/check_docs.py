#!/usr/bin/env python3
"""Executable-documentation checker (the CI docs job).

Two guarantees over ``README.md`` and the ``docs/`` tree:

1. every fenced ``python`` code block *runs*: blocks containing ``>>>``
   prompts are executed as doctests (outputs must match), plain blocks
   are ``exec``'d in a fresh namespace — so the documentation can never
   drift from the public API it describes;
2. every intra-repo markdown link resolves to an existing file.

Usage::

    python tools/check_docs.py                 # README.md + docs/*.md
    python tools/check_docs.py docs/api.md     # specific files

Exit code 0 when everything passes, 1 with a failure list otherwise.
Fenced blocks in other languages (``bash``, ``text``, …) are link-checked
but never executed.
"""

from __future__ import annotations

import doctest
import io
import re
import sys
import traceback
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^```(\S*)\s*$")
# [text](target) — excluding images' inner parens and bare autolinks.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def code_blocks(text: str) -> list[tuple[str, str, int]]:
    """``(language, code, first_line)`` for every fenced block."""
    blocks = []
    language, lines, start = None, [], 0
    for number, line in enumerate(text.splitlines(), start=1):
        fence = _FENCE.match(line.strip())
        if fence and language is None:
            language, lines, start = fence.group(1).lower(), [], number + 1
        elif line.strip() == "```" and language is not None:
            blocks.append((language, "\n".join(lines), start))
            language = None
        elif language is not None:
            lines.append(line)
    return blocks


def run_python_block(code: str, name: str) -> str | None:
    """Execute one python block; the error description, or None on success."""
    if ">>>" in code:
        parser = doctest.DocTestParser()
        try:
            test = parser.get_doctest(code, {}, name, name, 0)
        except ValueError as error:
            return f"unparseable doctest block: {error}"
        output = io.StringIO()
        runner = doctest.DocTestRunner(verbose=False)
        with redirect_stdout(output), redirect_stderr(io.StringIO()):
            runner.run(test)
        if runner.failures:
            return f"{runner.failures} doctest failure(s):\n{output.getvalue()}"
        return None
    try:
        with redirect_stdout(io.StringIO()), redirect_stderr(io.StringIO()):
            exec(compile(code, name, "exec"), {"__name__": "__docs__"})
    except Exception:
        return traceback.format_exc(limit=3)
    return None


def check_links(path: Path, text: str) -> list[str]:
    """Broken intra-repo link descriptions for one markdown file."""
    problems = []
    for number, line in enumerate(text.splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{_display(path)}:{number}: broken link -> {target}"
                )
    return problems


def check_file(path: Path) -> tuple[list[str], int]:
    """``(problems, executed_python_block_count)`` for one markdown file."""
    problems = []
    executed = 0
    text = path.read_text(encoding="utf-8")
    problems.extend(check_links(path, text))
    for language, code, line in code_blocks(text):
        if language not in ("python", "py", "pycon"):
            continue
        executed += 1
        name = f"{_display(path)}:{line}"
        error = run_python_block(code, name)
        if error is not None:
            problems.append(f"{name}: code block failed\n{error}")
    return problems, executed


def default_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def main(argv: list[str]) -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    files = [Path(arg).resolve() for arg in argv] or default_files()
    problems = []
    checked_blocks = 0
    for path in files:
        file_problems, executed = check_file(path)
        problems.extend(file_problems)
        checked_blocks += executed
    if problems:
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"docs check: {len(files)} file(s), {checked_blocks} python "
        "block(s) executed, all links resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
