#!/usr/bin/env python3
"""Deprecated-entry-point checker (part of the CI docs job).

The public surface is the ``repro.api`` facade; the old top-level
re-exports still work behind deprecation shims, but documentation and
examples must not teach them.  This tool scans ``README.md``, the
``docs/`` tree, and ``examples/`` for imports of deprecated entry
points and fails with the ``repro.api`` replacement to use instead.

Usage::

    python tools/check_deprecated.py                  # default file set
    python tools/check_deprecated.py docs/api.md      # specific files

Exit code 0 when everything is clean, 1 with a failure list otherwise.
Mentions inside prose are fine — only ``import`` statements count, so
the deprecation policy section can name the old spellings it retires.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# (pattern, replacement) — matched per line, only on import statements.
# The docs may *mention* repro.Spanner in prose (e.g. the deprecation
# table); what they must not do is teach the deprecated import.
_DEPRECATED: list[tuple[re.Pattern[str], str]] = [
    (
        re.compile(
            r"from\s+repro\s+import\s+(?:[\w\s,()]*\b)?"
            r"(Spanner|compile_spanner)\b"
        ),
        "use `repro.api.compile` (or `repro.spanner.Spanner` for the "
        "paper-level layer)",
    ),
    (
        re.compile(
            r"from\s+repro\.engine\s+import\s+(?:[\w\s,()]*\b)?"
            r"(compile_spanner|CompiledSpanner)\b"
        ),
        "import from `repro.engine.compiled` or use `repro.api.compile`",
    ),
    (
        re.compile(
            r"from\s+repro\.service\s+import\s+(?:[\w\s,()]*\b)?"
            r"(cached_spanner)\b"
        ),
        "use `repro.api.compile` (process-wide cache included)",
    ),
    (
        re.compile(r"import\s+repro\.engine\.compiled\s+as\s+api\b"),
        "use `from repro import api`",
    ),
]


def _display(path: Path) -> str:
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def check_file(path: Path) -> list[str]:
    """Deprecated-import findings for one file."""
    problems = []
    text = path.read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        for pattern, replacement in _DEPRECATED:
            match = pattern.search(line)
            if match:
                problems.append(
                    f"{_display(path)}:{number}: deprecated import "
                    f"`{match.group(0).strip()}` — {replacement}"
                )
    return problems


def default_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    files.extend(sorted((REPO_ROOT / "examples").glob("*.py")))
    return [path for path in files if path.exists()]


def main(argv: list[str]) -> int:
    files = [Path(arg).resolve() for arg in argv] or default_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(
            f"deprecated-entry-point check: {len(problems)} problem(s)",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(
        f"deprecated-entry-point check: {len(files)} file(s) clean "
        "(docs and examples import only supported surfaces)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
