"""Merge ``BENCH_*.json`` artifacts into one performance-trajectory table.

Every benchmark that runs with ``REPRO_BENCH_JSON`` set writes a
``BENCH_<name>.json`` file (see :func:`benchmarks._harness.write_results`)
carrying its headline series — most importantly ``median_speedup``, a
mapping of workload family to the measured median speedup, and
``minimum_speedup``, the bar the benchmark asserts in full mode.  This
tool collects those files — from the repository root, a CI artifact
directory, or any mix of paths — and renders one table, so the perf
trajectory across PRs is a single glance instead of N files:

    $ python tools/bench_trajectory.py
    benchmark  family       median  minimum  margin  mode
    e25        corpus       3.61    3.00     1.20x   full
    e25        enumeration  3.14    3.00     1.05x   full
    e26        corpus       3.86    2.00     1.93x   full

``--json OUT`` additionally writes the merged records for dashboards.
Exit status is 2 when any full-mode benchmark is under its bar (quick
runs are reported but never judged — CI smoke numbers are not
measurements).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys


def collect(paths: list[str]) -> list[str]:
    """Expand files, directories, and globs into BENCH json paths."""
    found: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            found.extend(sorted(glob.glob(os.path.join(path, "BENCH_*.json"))))
        elif os.path.isfile(path):
            found.append(path)
        else:
            found.extend(sorted(glob.glob(path)))
    seen: set[str] = set()
    unique = []
    for path in found:
        resolved = os.path.abspath(path)
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def trajectory_rows(paths: list[str]) -> tuple[list[dict], list[str]]:
    """One record per (benchmark, family) headline, plus parse problems."""
    rows: list[dict] = []
    problems: list[str] = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as error:
            problems.append(f"{path}: {error}")
            continue
        name = payload.get("benchmark") or os.path.basename(path)
        quick = bool(payload.get("quick"))
        minimum = payload.get("minimum_speedup")
        medians = payload.get("median_speedup")
        if not isinstance(medians, dict):
            medians = {"overall": medians} if medians is not None else {}
        if not medians:
            rows.append(
                {
                    "benchmark": name,
                    "family": "-",
                    "median_speedup": None,
                    "minimum_speedup": minimum,
                    "quick": quick,
                    "path": path,
                }
            )
        for family, median in sorted(medians.items()):
            rows.append(
                {
                    "benchmark": name,
                    "family": family,
                    "median_speedup": median,
                    "minimum_speedup": minimum,
                    "quick": quick,
                    "path": path,
                }
            )
    rows.sort(key=lambda row: (row["benchmark"], row["family"]))
    return rows, problems


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render(rows: list[dict]) -> str:
    headers = ["benchmark", "family", "median", "minimum", "margin", "mode"]
    table = []
    for row in rows:
        median = row["median_speedup"]
        minimum = row["minimum_speedup"]
        margin = (
            f"{median / minimum:.2f}x"
            if isinstance(median, (int, float))
            and isinstance(minimum, (int, float))
            and minimum
            else "-"
        )
        table.append(
            [
                row["benchmark"],
                row["family"],
                _fmt(median),
                _fmt(minimum),
                margin,
                "quick" if row["quick"] else "full",
            ]
        )
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in table))
        if table
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    for line in table:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(line)))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge BENCH_*.json files into one trajectory table."
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files, directories, or globs holding BENCH_*.json (default: .)",
    )
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="also write the merged records as JSON to OUT ('-' for stdout)",
    )
    arguments = parser.parse_args(argv)
    paths = collect(arguments.paths or ["."])
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    rows, problems = trajectory_rows(paths)
    print(render(rows))
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    if arguments.json is not None:
        merged = json.dumps({"trajectory": rows}, indent=2, sort_keys=True)
        if arguments.json == "-":
            print(merged)
        else:
            with open(arguments.json, "w", encoding="utf-8") as handle:
                handle.write(merged + "\n")
    under = [
        row
        for row in rows
        if not row["quick"]
        and isinstance(row["median_speedup"], (int, float))
        and isinstance(row["minimum_speedup"], (int, float))
        and row["median_speedup"] < row["minimum_speedup"]
    ]
    for row in under:
        print(
            f"UNDER BAR: {row['benchmark']}/{row['family']} "
            f"{row['median_speedup']:.2f} < {row['minimum_speedup']:.2f}",
            file=sys.stderr,
        )
    return 2 if under else 0


if __name__ == "__main__":
    raise SystemExit(main())
