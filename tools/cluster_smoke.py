"""Cluster smoke for the distributed serving tier, as an operator runs it.

Starts ``repro coordinate`` plus worker subprocesses joined to it, then
drives the topology through the failure the cluster exists to survive:

1. **baseline** — the corpus through a plain single ``repro serve``
   process records the ground-truth NDJSON bytes;
2. **cluster** — the same corpus through the coordinator with three
   rack nodes, ``kill -9`` on one node while the corpus is in flight:
   the stream must come back **byte-identical**, ``/metrics`` must show
   at least one requeue or eviction, and ``/healthz`` must list exactly
   the two surviving nodes;
3. **all dead** — the remaining nodes are SIGKILLed too; a fresh small
   job must still complete (local degradation), with ``/healthz`` at
   ``status ok`` and ``nodes 0``.

Exits non-zero on any violation — CI's cluster-smoke job runs this
script directly::

    python tools/cluster_smoke.py
"""

import os
import re
import signal
import subprocess
import sys
import time

from repro.cluster.protocol import split_url
from repro.server import ServerClient

PATTERN = ".*x{a+}.*"
DOCUMENTS = [
    (f"doc-{index:05d}", ("ab" * (index % 9)) + "aaa" + ("ba" * (index % 7)))
    for index in range(400)
]
WORKERS = 3

_BANNER = re.compile(r"https?://([0-9.]+):([0-9]+)")


def _spawn(arguments: list[str], banner_token: str) -> tuple[subprocess.Popen, str]:
    """Start a repro subprocess, wait for its banner, return its URL."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", *arguments],
        stderr=subprocess.PIPE,
        stdout=subprocess.DEVNULL,
    )
    banner = process.stderr.readline().decode()
    if banner_token not in banner:
        process.kill()
        raise AssertionError(f"unexpected banner: {banner!r}")
    matched = _BANNER.search(banner)
    assert matched, f"no address in banner: {banner!r}"
    return process, f"http://{matched.group(1)}:{matched.group(2)}"


def _client(url: str, **kwargs) -> ServerClient:
    host, port = split_url(url)
    return ServerClient(host, port, **kwargs)


def _wait_nodes(url: str, expected: int, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    client = _client(url)
    try:
        while time.monotonic() < deadline:
            health = client.healthz()
            if health["nodes"] == expected:
                return health
            time.sleep(0.1)
    finally:
        client.close()
    raise AssertionError(
        f"coordinator never reached {expected} nodes (last: {health})"
    )


def _reap(process: subprocess.Popen, timeout: float = 30.0) -> int:
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    try:
        code = process.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        code = process.wait(timeout=10)
    if process.stderr is not None:
        process.stderr.close()
    return code


def main() -> int:
    # 1. Ground truth from a plain single-host server.
    single, single_url = _spawn(
        ["serve", "--port", "0", "--workers", "0"], "listening on"
    )
    try:
        client = _client(single_url, timeout=120.0)
        try:
            baseline = client.enumerate_ndjson(PATTERN, DOCUMENTS)
        finally:
            client.close()
    finally:
        if _reap(single) != 0:
            print("FAIL: baseline server exited non-zero", file=sys.stderr)
            return 1
    print(f"baseline: {len(baseline)} NDJSON lines from a single host")

    # 2. The cluster, with one node murdered mid-corpus.
    coordinator, coordinator_url = _spawn(
        [
            "coordinate",
            "--port",
            "0",
            "--heartbeat-interval",
            "0.2",
            "--heartbeat-timeout",
            "0.6",
        ],
        "listening on",
    )
    workers = []
    try:
        for _ in range(WORKERS):
            workers.append(
                _spawn(
                    ["worker", "--join", coordinator_url, "--port", "0"],
                    "serving",
                )[0]
            )
        _wait_nodes(coordinator_url, WORKERS)
        print(f"cluster: {WORKERS} nodes registered at {coordinator_url}")

        victim = workers[0]
        fired = []

        def corpus():
            for position, pair in enumerate(DOCUMENTS):
                if position == len(DOCUMENTS) // 4 and not fired:
                    os.kill(victim.pid, signal.SIGKILL)
                    fired.append(True)
                    print(f"killed node pid={victim.pid} mid-corpus")
                yield pair

        client = _client(coordinator_url, timeout=120.0)
        try:
            lines = client.enumerate_ndjson(PATTERN, corpus())
            metrics = client.metrics_text()
            health = client.healthz()
        finally:
            client.close()

        if lines != baseline:
            print("FAIL: cluster output differs from baseline", file=sys.stderr)
            return 1
        print(f"cluster: {len(lines)} lines, byte-identical to baseline")

        counters = {}
        for line in metrics.splitlines():
            if not line.startswith("#") and " " in line:
                name, value = line.rsplit(" ", 1)
                counters[name] = float(value)
        requeues = counters.get("repro_cluster_requeues_total", 0)
        evictions = counters.get("repro_cluster_evictions_total", 0)
        if requeues < 1 and evictions < 1:
            print(
                f"FAIL: no requeue or eviction recorded "
                f"(requeues={requeues}, evictions={evictions})",
                file=sys.stderr,
            )
            return 1
        print(f"requeues={requeues:g} evictions={evictions:g}")

        health = _wait_nodes(coordinator_url, WORKERS - 1)
        survivors = {node["node_id"] for node in health["cluster"]["nodes"]}
        print(f"healthz: surviving topology {sorted(survivors)}")

        # 3. Kill the rest: the coordinator degrades to local execution.
        for process in workers[1:]:
            os.kill(process.pid, signal.SIGKILL)
        _wait_nodes(coordinator_url, 0)
        client = _client(coordinator_url, timeout=120.0)
        try:
            lines = client.enumerate_ndjson(PATTERN, DOCUMENTS[:25])
            health = client.healthz()
        finally:
            client.close()
        if lines != baseline[:25]:
            print("FAIL: degraded output differs", file=sys.stderr)
            return 1
        if health["status"] != "ok" or health["nodes"] != 0:
            print(f"FAIL: bad degraded healthz: {health}", file=sys.stderr)
            return 1
        print("all nodes dead: corpus still completes locally, status ok")
    finally:
        for process in workers:
            _reap(process)
        code = _reap(coordinator)
    if code != 0:
        print(f"FAIL: coordinator drain exited {code}", file=sys.stderr)
        return 1
    print("cluster smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
