"""Degraded-mode smoke for the fault-tolerant serving path.

Starts ``repro serve`` with worker processes, a zero rebuild budget, and
``REPRO_FAULT_POISON`` armed, then drives it through the full
degradation cycle an operator would see:

1. **healthy** — ``/healthz`` answers ``ok``;
2. **break the pool** — POST a document carrying the poison token: the
   worker SIGKILLs itself, the zero budget fails the pool, and the
   server must still answer the request correctly (in-process fallback);
3. **degraded** — ``/healthz`` must now read ``degraded`` with
   ``pool.alive == false``, and ``/metrics`` must report
   ``repro_degraded 1``;
4. **recover** — after ``--degraded-reset`` the next request revives the
   pool (the poison knob is gone from the environment by then only for
   *new* workers, so the request must be clean) and ``/healthz`` flips
   back to ``ok``.

Exits non-zero on any violation — CI's server-smoke job runs this
script directly::

    python tools/degraded_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

PATTERN = ".*Seller: x{[^,\\n]*},.*"
POISON = "POISON-PILL"
PORT = 8271
DEGRADED_RESET = 1.0

_HEALTH_ATTEMPTS = 150


def _get_json(path: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{PORT}{path}", timeout=10
    ) as response:
        return json.loads(response.read().decode())


def _metrics() -> str:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{PORT}/metrics", timeout=10
    ) as response:
        return response.read().decode()


def _enumerate(document: str) -> dict:
    body = json.dumps({"pattern": PATTERN, "document": document}).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{PORT}/enumerate",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode())


def main() -> int:
    environment = dict(os.environ)
    environment["REPRO_FAULT_POISON"] = POISON
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            str(PORT),
            "--workers",
            "2",
            "--batch-delay",
            "0",
            "--max-rebuilds",
            "0",
            "--degraded-reset",
            str(DEGRADED_RESET),
        ],
        env=environment,
    )
    try:
        for _ in range(_HEALTH_ATTEMPTS):
            try:
                health = _get_json("/healthz")
                break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        else:
            raise RuntimeError("server never became healthy")
        assert health["status"] == "ok", health

        # A poison document kills its worker; the zero rebuild budget
        # fails the pool — but the answer must still be right.
        reply = _enumerate(f"Seller: John, {POISON}\n")
        assert reply["results"][0]["mappings"] == [{"x": "John"}], reply
        assert reply["results"][0]["error"] is None, reply

        health = _get_json("/healthz")
        print(f"after pool breakage: {health}")
        assert health["status"] == "degraded", health
        assert health["degraded"] is True, health
        assert health["pool"]["alive"] is False, health
        assert "repro_degraded 1" in _metrics(), "metrics missed degradation"

        # Past the reset window the next request revives the pool.  New
        # workers inherit the poison knob too, so send a clean document.
        time.sleep(DEGRADED_RESET + 0.2)
        reply = _enumerate("Seller: Mark, ID7\n")
        assert reply["results"][0]["mappings"] == [{"x": "Mark"}], reply

        health = _get_json("/healthz")
        print(f"after recovery: {health}")
        assert health["status"] == "ok", health
        assert health["degraded"] is False, health
        assert health["pool"]["alive"] is True, health
        assert "repro_degraded 0" in _metrics(), "metrics missed recovery"

        print("degraded-mode smoke OK")
        return 0
    finally:
        process.send_signal(signal.SIGTERM)
        if process.wait(timeout=30) != 0:
            raise RuntimeError("server did not drain cleanly")


if __name__ == "__main__":
    sys.exit(main())
